//===- tests/shard_replay_test.cpp - Sharded replay parity ----------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// The sharded parallel replay engine's contract is bit-identity: for any
// sealed recording and any hierarchy configuration, replayParallel must
// leave a MemoryHierarchy in a state indistinguishable from a serial
// replay of the same span — SimStats, cache and TLB counters, now(),
// and (tested by continuing to drive both hierarchies afterwards) all
// state future accesses can observe. This suite checks that parity on
// both Table 1 presets, on randomized configurations and traces, across
// phased (multi-cut) replays, and on every serial-fallback path.
//
//===----------------------------------------------------------------------===//

#include "sim/MemoryHierarchy.h"
#include "sim/TraceBuffer.h"
#include "sim/TraceShardIndex.h"
#include "support/SweepRunner.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

using namespace ccl;
using namespace ccl::sim;

namespace {

// Hermetic 64-bit LCG (MMIX constants), as in sim_golden_test.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  uint64_t bounded(uint64_t N) { return next() % N; }
};

/// Every externally observable number a hierarchy exposes.
using Snapshot = std::array<uint64_t, 24>;

Snapshot snap(const MemoryHierarchy &M) {
  const SimStats &S = M.stats();
  return {S.Reads,          S.Writes,
          S.L1Hits,         S.L1Misses,
          S.L2Hits,         S.L2Misses,
          S.TlbMisses,      S.Writebacks,
          S.SwPrefetches,   S.HwPrefetches,
          S.PrefetchFullHits, S.PrefetchPartialHits,
          S.BusyCycles,     S.L1StallCycles,
          S.L2StallCycles,  S.TlbStallCycles,
          S.PrefetchIssueCycles, M.now(),
          M.l1().hits(),    M.l1().evictions(),
          M.l2().hits(),    M.l2().evictions(),
          M.tlb().hits(),   M.tlb().misses()};
}

void expectSame(const Snapshot &Serial, const Snapshot &Sharded,
                const std::string &Label) {
  SCOPED_TRACE(Label);
  for (size_t I = 0; I < Serial.size(); ++I)
    EXPECT_EQ(Serial[I], Sharded[I]) << "counter " << I;
}

/// A mixed trace: pointer-chase reads, strided writes, block-spanning
/// and odd (varint-encoded) sizes, size-0 touches, and compute ticks.
TraceBuffer mixedTrace(uint64_t Seed, size_t Records,
                       uint64_t Span = 8ULL << 20) {
  TraceBuffer Buf;
  Lcg Rng(Seed);
  const uint64_t Base = 0x7f0000000000ULL + (Seed & 0xFFF) * 4096;
  const uint64_t Sizes[] = {0, 1, 2, 4, 8, 16, 48, 64, 100, 128};
  uint64_t Node = 0;
  for (size_t I = 0; I < Records; ++I) {
    uint64_t Roll = Rng.bounded(100);
    if (Roll < 5) {
      Buf.recordTick(1 + Rng.bounded(20));
      continue;
    }
    uint64_t Addr;
    if (Roll < 70) {
      // Pointer chase over 64-byte nodes.
      Addr = Base + Node * 64;
      Node = Rng.bounded(Span / 64);
    } else {
      // Random byte address (unaligned accesses cross blocks).
      Addr = Base + Rng.bounded(Span);
    }
    uint64_t Size = Sizes[Rng.bounded(sizeof(Sizes) / sizeof(Sizes[0]))];
    if (Roll % 4 == 3)
      Buf.recordWrite(Addr, Size);
    else
      Buf.recordRead(Addr, Size);
  }
  Buf.seal();
  return Buf;
}

/// Serial reference replay of a cut span through the same index (the
/// fallback cursors), into \p M.
void serialReplay(MemoryHierarchy &M, const TraceShardIndex &Index,
                  size_t CutA, size_t CutB) {
  TraceCursor Cursor = Index.originalCursorAt(CutA);
  M.replay(Cursor, Index.recordsAt(CutB) - Index.recordsAt(CutA));
}

} // namespace

TEST(ShardKeySpec, Table1PresetsNest) {
  // E5000: L1 16KB/16B DM -> set bits [4,14); L2 64B blocks -> key
  // window [6,14): 256 shards. RSIM: L1 16KB/128B DM -> set bits
  // [7,14); L2 128B blocks -> key window [7,14): 128 shards.
  ShardKeySpec E5000 =
      ShardKeySpec::fromConfig(HierarchyConfig::ultraSparcE5000());
  EXPECT_TRUE(E5000.Nested);
  EXPECT_TRUE(E5000.shardable());
  EXPECT_EQ(E5000.KeyShift, 6u);
  EXPECT_EQ(E5000.KeyBits, 8u);
  EXPECT_EQ(E5000.numShards(), 256u);

  ShardKeySpec Rsim = ShardKeySpec::fromConfig(HierarchyConfig::rsimTable1());
  EXPECT_TRUE(Rsim.Nested);
  EXPECT_TRUE(Rsim.shardable());
  EXPECT_EQ(Rsim.KeyShift, 7u);
  EXPECT_EQ(Rsim.KeyBits, 7u);
  EXPECT_EQ(Rsim.numShards(), 128u);
}

TEST(ShardKeySpec, RejectsNonNestedGeometries) {
  // L1 frame (32KB direct-mapped) larger than the L2 frame (16KB =
  // 32KB 2-way): the L1 set-index bits stick out above the L2 ones.
  HierarchyConfig Wide;
  Wide.L1 = {32 * 1024, 32, 1, 1};
  Wide.L2 = {32 * 1024, 64, 2, 6};
  ASSERT_TRUE(Wide.isValid());
  ShardKeySpec Spec = ShardKeySpec::fromConfig(Wide);
  EXPECT_FALSE(Spec.Nested);
  EXPECT_FALSE(Spec.shardable());
  EXPECT_STRNE(Spec.Reason, "");

  // One L2 block covering the whole (tiny) L1: nested but a single shard.
  HierarchyConfig Tiny;
  Tiny.L1 = {512, 32, 1, 1};
  Tiny.L2 = {64 * 1024, 512, 1, 6};
  ASSERT_TRUE(Tiny.isValid());
  Spec = ShardKeySpec::fromConfig(Tiny);
  EXPECT_TRUE(Spec.Nested);
  EXPECT_FALSE(Spec.shardable());

  // Hardware next-line prefetching couples sets through the cycle clock.
  HierarchyConfig Prefetching = HierarchyConfig::ultraSparcE5000();
  Prefetching.Prefetch.NextLineDegree = 2;
  Spec = ShardKeySpec::fromConfig(Prefetching);
  EXPECT_FALSE(Spec.shardable());
}

TEST(ShardReplay, FullSpanParityBothPresets) {
  SweepRunner Pool(4);
  for (const char *Preset : {"e5000", "rsim"}) {
    HierarchyConfig Config = std::string(Preset) == "e5000"
                                 ? HierarchyConfig::ultraSparcE5000()
                                 : HierarchyConfig::rsimTable1();
    TraceBuffer Buf = mixedTrace(0x5EED0 + Config.MemoryLatency, 120000);
    TraceShardIndex Index(Buf.view(), Config, {}, Pool.threads());
    ASSERT_TRUE(Index.sharded()) << Index.serialReason();

    MemoryHierarchy Serial(Config);
    Serial.replay(Buf.view());

    MemoryHierarchy Sharded(Config);
    obs::ReplayShardingEvent Event = Sharded.replayParallel(Index, Pool);
    EXPECT_TRUE(Event.Parallel) << Event.Reason;
    EXPECT_EQ(Event.Records, Sharded.stats().memoryReferences());
    EXPECT_GE(Event.MaxShardRecords, Event.MinShardRecords);
    EXPECT_GE(Event.imbalance(), 1.0);

    expectSame(snap(Serial), snap(Sharded), Preset);
  }
}

TEST(ShardReplay, PhasedReplayMatchesSerialSnapshots) {
  // fig10's shape: a warmup span, then a measured window, with
  // statistics snapshots taken at the cut. Each phase of the parallel
  // replay must land on the serial phase snapshot exactly.
  SweepRunner Pool(4);
  HierarchyConfig Config = HierarchyConfig::ultraSparcE5000();
  TraceBuffer Buf = mixedTrace(0xF16'0A11, 90000);
  size_t N = Buf.records();
  std::vector<size_t> Marks = {N / 4, N / 2};
  TraceShardIndex Index(Buf.view(), Config, Marks, Pool.threads());
  ASSERT_TRUE(Index.sharded());
  ASSERT_EQ(Index.numCuts(), 4u);

  MemoryHierarchy Serial(Config);
  MemoryHierarchy Sharded(Config);
  TraceCursor SerialCursor(Buf.view());
  size_t Consumed = 0;
  for (size_t Cut = 1; Cut < Index.numCuts(); ++Cut) {
    Serial.replay(SerialCursor, Index.recordsAt(Cut) - Consumed);
    Consumed = Index.recordsAt(Cut);
    obs::ReplayShardingEvent Event =
        Sharded.replayParallel(Index, Cut - 1, Cut, Pool);
    EXPECT_TRUE(Event.Parallel) << Event.Reason;
    expectSame(snap(Serial), snap(Sharded),
               "after phase " + std::to_string(Cut));
  }
}

TEST(ShardReplay, HierarchyStaysUsableAfterParallelReplay) {
  // Bit-identity must extend to state later accesses observe: tags,
  // recency, dirty bits, translation, and TLB residency. Drive both
  // hierarchies with more traffic (live calls and a serial second
  // replay) after the parallel pass and compare every counter again.
  SweepRunner Pool(4);
  HierarchyConfig Config = HierarchyConfig::rsimTable1();
  TraceBuffer Buf = mixedTrace(0xC0411, 60000);
  TraceShardIndex Index(Buf.view(), Config, {}, Pool.threads());
  ASSERT_TRUE(Index.sharded());

  MemoryHierarchy Serial(Config);
  Serial.replay(Buf.view());
  MemoryHierarchy Sharded(Config);
  ASSERT_TRUE(Sharded.replayParallel(Index, Pool).Parallel);

  // Mixed live traffic touching both previously-seen and fresh units.
  Lcg Rng(0xAF7E2);
  for (unsigned I = 0; I < 20000; ++I) {
    uint64_t Addr = 0x7f0000000000ULL + Rng.bounded(16ULL << 20);
    if (I % 3 == 0)
      Serial.write(Addr, 8), Sharded.write(Addr, 8);
    else
      Serial.read(Addr, 16), Sharded.read(Addr, 16);
  }
  // And a full serial re-replay of the same recording on both.
  Serial.replay(Buf.view());
  Sharded.replay(Buf.view());
  expectSame(snap(Serial), snap(Sharded), "after continued use");
}

TEST(ShardReplay, SerialFallbacksStayBitIdentical) {
  SweepRunner Pool(4);
  HierarchyConfig Config = HierarchyConfig::ultraSparcE5000();
  TraceBuffer Buf = mixedTrace(0xFA11BACC, 40000);

  auto serialSnap = [&] {
    MemoryHierarchy M(Config);
    M.replay(Buf.view());
    return snap(M);
  };
  Snapshot Reference = serialSnap();

  {
    // Single-worker hint: the index skips sub-stream construction.
    TraceShardIndex Index(Buf.view(), Config, {}, 1);
    EXPECT_FALSE(Index.sharded());
    MemoryHierarchy M(Config);
    obs::ReplayShardingEvent Event = M.replayParallel(Index, Pool);
    EXPECT_FALSE(Event.Parallel);
    EXPECT_STREQ(Event.Reason, "single worker");
    expectSame(Reference, snap(M), "single-worker-hint fallback");
  }
  {
    // Single-thread pool at replay time (the 1-vCPU path).
    TraceShardIndex Index(Buf.view(), Config, {}, 4);
    SweepRunner OneThread(1);
    MemoryHierarchy M(Config);
    obs::ReplayShardingEvent Event = M.replayParallel(Index, OneThread);
    EXPECT_FALSE(Event.Parallel);
    expectSame(Reference, snap(M), "single-thread-pool fallback");
  }
  {
    // Called from inside a sweep worker: nested parallelism is refused.
    TraceShardIndex Index(Buf.view(), Config, {}, 4);
    std::vector<Snapshot> Cells(3);
    // Not vector<bool>: workers write elements concurrently, and the
    // bit-packed specialization would race on the shared word.
    std::vector<char> Parallel(3, 1);
    Pool.run(3, [&](size_t I) {
      MemoryHierarchy M(Config);
      Parallel[I] = M.replayParallel(Index, Pool).Parallel;
      Cells[I] = snap(M);
    });
    for (size_t I = 0; I < 3; ++I) {
      EXPECT_FALSE(Parallel[I]);
      expectSame(Reference, Cells[I], "nested fallback");
    }
  }
  {
    // Hierarchy whose translation state does not match the cut: replay
    // unrelated traffic first, then ask for a parallel replay.
    TraceShardIndex Index(Buf.view(), Config, {}, 4);
    MemoryHierarchy Dirty(Config);
    Dirty.read(0x7fee00000000ULL, 8);
    MemoryHierarchy SerialTwin(Config);
    SerialTwin.read(0x7fee00000000ULL, 8);
    obs::ReplayShardingEvent Event = Dirty.replayParallel(Index, Pool);
    EXPECT_FALSE(Event.Parallel);
    SerialTwin.replay(Buf.view());
    expectSame(snap(SerialTwin), snap(Dirty), "state-mismatch fallback");
  }
  {
    // Software prefetch records: index keeps cuts but refuses to shard.
    TraceBuffer PfBuf;
    for (unsigned I = 0; I < 5000; ++I) {
      uint64_t Addr = 0x7f5600000000ULL + uint64_t(I) * 64;
      PfBuf.recordPrefetch(Addr + 4 * 64);
      PfBuf.recordRead(Addr, 8);
      PfBuf.recordTick(20);
    }
    PfBuf.seal();
    TraceShardIndex Index(PfBuf.view(), Config, {}, 4);
    EXPECT_FALSE(Index.sharded());
    MemoryHierarchy SerialM(Config);
    SerialM.replay(PfBuf.view());
    MemoryHierarchy M(Config);
    EXPECT_FALSE(M.replayParallel(Index, Pool).Parallel);
    expectSame(snap(SerialM), snap(M), "sw-prefetch fallback");
  }
}

TEST(ShardReplay, ObserverForcesSerialAndReportsSharding) {
  struct ShardingTally final : obs::SimObserver {
    uint64_t Accesses = 0;
    std::vector<obs::ReplayShardingEvent> Events;
    void onAccess(const obs::AccessEvent &) override { ++Accesses; }
    void onReplaySharding(const obs::ReplayShardingEvent &E) override {
      Events.push_back(E);
    }
  };
  SweepRunner Pool(4);
  HierarchyConfig Config = HierarchyConfig::ultraSparcE5000();
  TraceBuffer Buf = mixedTrace(0x0B5, 30000);
  TraceShardIndex Index(Buf.view(), Config, {}, 4);
  ASSERT_TRUE(Index.sharded());

  MemoryHierarchy SerialM(Config);
  SerialM.replay(Buf.view());

  MemoryHierarchy M(Config);
  ShardingTally Tally;
  M.attachObserver(&Tally);
  obs::ReplayShardingEvent Event = M.replayParallel(Index, Pool);
  EXPECT_FALSE(Event.Parallel);
  ASSERT_EQ(Tally.Events.size(), 1u);
  EXPECT_FALSE(Tally.Events[0].Parallel);
  // The event still carries the index's shard geometry and skew.
  EXPECT_EQ(Tally.Events[0].Shards, Index.numShards());
  EXPECT_EQ(Tally.Events[0].Records, M.stats().memoryReferences());
  EXPECT_EQ(Tally.Accesses, M.stats().memoryReferences());
  expectSame(snap(SerialM), snap(M), "observed fallback");
}

TEST(ShardReplay, RandomizedConfigAndTraceParity) {
  // Property check over randomized cache geometries and recordings:
  // whatever the geometry (nested or not, TLB on or off), the parallel
  // entry point must match a serial replay bit for bit. Seeds are fixed
  // so failures reproduce.
  SweepRunner Pool(4);
  unsigned ShardedRuns = 0;
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    Lcg Rng(Seed * 0x9E3779B9ULL);
    HierarchyConfig Config;
    Config.L1.BlockBytes = 16u << Rng.bounded(4);          // 16..128
    Config.L1.Associativity = 1u << Rng.bounded(2);        // 1..2
    Config.L1.CapacityBytes =
        (4096ULL << Rng.bounded(4)) * Config.L1.Associativity;
    Config.L1.HitLatency = 1;
    Config.L2.BlockBytes = Config.L1.BlockBytes << Rng.bounded(3);
    Config.L2.Associativity = 1u << Rng.bounded(3);        // 1..4
    Config.L2.CapacityBytes =
        (64 * 1024ULL << Rng.bounded(5)) * Config.L2.Associativity;
    Config.L2.HitLatency = 4 + uint32_t(Rng.bounded(8));
    Config.MemoryLatency = 40 + uint32_t(Rng.bounded(60));
    Config.Tlb.Enabled = Rng.bounded(4) != 0;
    Config.Tlb.Entries = 16u << Rng.bounded(3);
    Config.Tlb.PageBytes = 4096u << Rng.bounded(2);
    Config.Tlb.MissLatency = 20 + uint32_t(Rng.bounded(40));
    ASSERT_TRUE(Config.isValid()) << "seed " << Seed;

    TraceBuffer Buf =
        mixedTrace(Seed, 30000, 2ULL << Rng.bounded(4) << 20);
    std::vector<size_t> Marks = {Buf.records() / 3};
    TraceShardIndex Index(Buf.view(), Config, Marks, Pool.threads());
    ShardedRuns += Index.sharded();

    MemoryHierarchy Serial(Config);
    Serial.replay(Buf.view());

    MemoryHierarchy Sharded(Config);
    Sharded.replayParallel(Index, 0, 1, Pool);
    Sharded.replayParallel(Index, 1, 2, Pool);

    expectSame(snap(Serial), snap(Sharded),
               "seed " + std::to_string(Seed) +
                   (Index.sharded() ? " (sharded)" : " (serial)"));

    // The serial fallback cursors cover the same spans exactly.
    MemoryHierarchy ViaCursors(Config);
    serialReplay(ViaCursors, Index, 0, 1);
    serialReplay(ViaCursors, Index, 1, 2);
    expectSame(snap(Serial), snap(ViaCursors),
               "seed " + std::to_string(Seed) + " cursors");
  }
  // The generator must actually exercise the parallel path.
  EXPECT_GE(ShardedRuns, 8u);
}

TEST(ShardReplay, EmptyAndTinySpans) {
  SweepRunner Pool(4);
  HierarchyConfig Config = HierarchyConfig::ultraSparcE5000();

  TraceBuffer Empty;
  Empty.seal();
  TraceShardIndex EmptyIndex(Empty.view(), Config, {}, 4);
  MemoryHierarchy M(Config);
  obs::ReplayShardingEvent Event = M.replayParallel(EmptyIndex, Pool);
  EXPECT_EQ(Event.Records, 0u);
  EXPECT_EQ(M.stats().memoryReferences(), 0u);
  EXPECT_EQ(M.now(), 0u);

  TraceBuffer One;
  One.recordRead(0x7f0000001234ULL, 8);
  One.seal();
  TraceShardIndex OneIndex(One.view(), Config, {}, 4);
  MemoryHierarchy SerialM(Config);
  SerialM.replay(One.view());
  MemoryHierarchy ShardedM(Config);
  ShardedM.replayParallel(OneIndex, Pool);
  expectSame(snap(SerialM), snap(ShardedM), "one record");
}
