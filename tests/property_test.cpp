//===- tests/property_test.cpp - Parameterized property suites ----------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Randomized, seed-parameterized property sweeps over the allocator, the
// simulator, and the reorganizer: invariants that must hold for *any*
// input, checked across many deterministic seeds.
//
//===----------------------------------------------------------------------===//

#include "core/CcMorph.h"
#include "heap/CcHeap.h"
#include "sim/MemoryHierarchy.h"
#include "support/Random.h"
#include "trees/BinaryTree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

using namespace ccl;
using namespace ccl::trees;

//===----------------------------------------------------------------------===//
// Heap fuzzing across seeds and strategies.
//===----------------------------------------------------------------------===//

class HeapFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, heap::CcStrategy>> {
};

TEST_P(HeapFuzz, NoOverlapNoCorruption) {
  auto [Seed, Strategy] = GetParam();
  heap::CcHeap Heap;
  Xoshiro256 Rng(Seed);
  std::map<void *, std::pair<size_t, char>> Live;
  std::vector<void *> Order;

  for (int Step = 0; Step < 2500; ++Step) {
    if (!Order.empty() && Rng.nextBounded(4) == 0) {
      size_t Pick = Rng.nextBounded(Order.size());
      void *Ptr = Order[Pick];
      Order.erase(Order.begin() + Pick);
      auto It = Live.find(Ptr);
      ASSERT_NE(It, Live.end());
      auto [Bytes, Fill] = It->second;
      auto *Data = static_cast<unsigned char *>(Ptr);
      for (size_t I = 0; I < Bytes; ++I)
        ASSERT_EQ(Data[I], static_cast<unsigned char>(Fill));
      Heap.deallocate(Ptr);
      Live.erase(It);
      continue;
    }
    size_t Bytes = 1 + Rng.nextBounded(96);
    void *Near = Order.empty() ? nullptr : Order[Rng.nextBounded(Order.size())];
    void *P = Rng.nextBounded(2) ? Heap.allocateNear(Bytes, Near, Strategy)
                                 : Heap.allocate(Bytes);
    ASSERT_NE(P, nullptr);
    ASSERT_TRUE(Heap.owns(P));
    ASSERT_GE(Heap.sizeOf(P), Bytes);
    ASSERT_FALSE(Live.count(P));
    char Fill = static_cast<char>(Rng.nextBounded(256));
    std::memset(P, Fill, Bytes);
    Live[P] = {Bytes, Fill};
    Order.push_back(P);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, HeapFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(heap::CcStrategy::Closest,
                                         heap::CcStrategy::NewBlock,
                                         heap::CcStrategy::FirstFit)));

//===----------------------------------------------------------------------===//
// Simulator consistency across random traces.
//===----------------------------------------------------------------------===//

class SimTrace : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimTrace, CountersAlwaysConsistent) {
  sim::HierarchyConfig Config;
  Config.L1 = {2048, 32, 1, 1};
  Config.L2 = {16 * 1024, 64, 2, 7};
  Config.MemoryLatency = 40;
  Config.Tlb = {true, 8, 4096, 25};
  sim::MemoryHierarchy M(Config);
  Xoshiro256 Rng(GetParam());

  for (int I = 0; I < 8000; ++I) {
    uint64_t Addr = Rng.nextBounded(1 << 20);
    switch (Rng.nextBounded(4)) {
    case 0:
      M.write(Addr, 1 + Rng.nextBounded(16));
      break;
    case 3:
      M.prefetch(Addr);
      break;
    default:
      M.read(Addr, 1 + Rng.nextBounded(16));
      break;
    }
    if (Rng.nextBounded(8) == 0)
      M.tick(Rng.nextBounded(20));
  }
  const sim::SimStats &S = M.stats();
  EXPECT_EQ(S.L1Hits + S.L1Misses, S.Reads + S.Writes);
  EXPECT_EQ(S.L2Hits + S.L2Misses, S.L1Misses);
  EXPECT_EQ(S.totalCycles(), M.now());
  EXPECT_LE(S.PrefetchFullHits + S.PrefetchPartialHits,
            S.SwPrefetches + S.HwPrefetches);
  EXPECT_GE(S.l1MissRate(), 0.0);
  EXPECT_LE(S.l1MissRate(), 1.0);
}

TEST_P(SimTrace, RepeatedTraceIsDeterministic) {
  auto RunOnce = [&](uint64_t Seed) {
    sim::HierarchyConfig Config;
    Config.L1 = {2048, 32, 1, 1};
    Config.L2 = {16 * 1024, 64, 2, 7};
    Config.MemoryLatency = 40;
    Config.Tlb.Enabled = false;
    sim::MemoryHierarchy M(Config);
    Xoshiro256 Rng(Seed);
    for (int I = 0; I < 3000; ++I)
      M.read(Rng.nextBounded(1 << 18), 4);
    return M.now();
  };
  EXPECT_EQ(RunOnce(GetParam()), RunOnce(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimTrace,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

//===----------------------------------------------------------------------===//
// Morph semantic preservation across random shapes.
//===----------------------------------------------------------------------===//

namespace {

/// An irregular (non-complete) binary tree built by random insertion.
struct RandTree {
  std::vector<BstNode> Pool;
  BstNode *Root = nullptr;
  uint64_t Count = 0;
};

RandTree buildRandomInsertionTree(uint64_t N, uint64_t Seed) {
  RandTree T;
  T.Pool.resize(N);
  Xoshiro256 Rng(Seed);
  std::vector<uint32_t> Keys;
  for (uint64_t I = 0; I < N; ++I)
    Keys.push_back(static_cast<uint32_t>(2 * I + 1));
  Rng.shuffle(Keys);
  for (uint64_t I = 0; I < N; ++I) {
    BstNode *Node = &T.Pool[I];
    Node->Key = Keys[I];
    Node->Value = 0;
    Node->Left = Node->Right = nullptr;
    if (!T.Root) {
      T.Root = Node;
    } else {
      BstNode *Cur = T.Root;
      for (;;) {
        if (Node->Key < Cur->Key) {
          if (!Cur->Left) {
            Cur->Left = Node;
            break;
          }
          Cur = Cur->Left;
        } else {
          if (!Cur->Right) {
            Cur->Right = Node;
            break;
          }
          Cur = Cur->Right;
        }
      }
    }
  }
  T.Count = N;
  return T;
}

CacheParams morphParams() {
  CacheParams P;
  P.CacheSets = 128;
  P.Associativity = 2;
  P.BlockBytes = 64;
  P.PageBytes = 4096;
  P.HotSets = 32;
  return P;
}

} // namespace

class MorphFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MorphFuzz, IrregularTreesSurviveEveryScheme) {
  RandTree T = buildRandomInsertionTree(700 + GetParam() * 13, GetParam());
  for (LayoutScheme Scheme :
       {LayoutScheme::Subtree, LayoutScheme::DepthFirst, LayoutScheme::Bfs,
        LayoutScheme::Random}) {
    CcMorph<BstNode, BstAdapter> Morph(morphParams());
    MorphOptions Options;
    Options.Scheme = Scheme;
    Options.Seed = GetParam();
    BstNode *NewRoot = Morph.reorganize(T.Root, Options);
    EXPECT_TRUE(verifyBst(NewRoot, T.Count)) << layoutSchemeName(Scheme);
    EXPECT_EQ(Morph.stats().NodeCount, T.Count);
  }
}

TEST_P(MorphFuzz, HotNeverExceedsBudget) {
  RandTree T = buildRandomInsertionTree(2000, GetParam() * 7 + 1);
  CacheParams P = morphParams();
  CcMorph<BstNode, BstAdapter> Morph(P);
  Morph.reorganize(T.Root);
  // Hot footprint (block-aligned clusters) never exceeds p*a*b.
  EXPECT_LE(Morph.stats().HotNodes * sizeof(BstNode), P.hotCapacityBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
