//===- tests/obs_test.cpp - Telemetry subsystem unit tests ------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the observability subsystem: the region registry and its
// allocator registration helpers, the attribution sink's per-region and
// block-utilization accounting, trace-dump sampling, the JSONL round trip
// (live sink vs. one rebuilt purely from a dump), the profile exporters,
// and MultiObserver fan-out.
//
//===----------------------------------------------------------------------===//

#include "core/CacheParams.h"
#include "core/ColoredArena.h"
#include "heap/CcHeap.h"
#include "obs/Attribution.h"
#include "obs/Export.h"
#include "obs/Observer.h"
#include "obs/Region.h"
#include "obs/TraceReader.h"
#include "sim/MemoryHierarchy.h"
#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace ccl;
using namespace ccl::obs;

namespace {

uint64_t vaddr(const void *Ptr) { return reinterpret_cast<uint64_t>(Ptr); }

std::string slurp(std::FILE *F) {
  std::string Content;
  std::rewind(F);
  int C;
  while ((C = std::fgetc(F)) != EOF)
    Content.push_back(char(C));
  return Content;
}

void expectProfileEq(const RegionProfile &A, const RegionProfile &B) {
  EXPECT_EQ(A.Reads, B.Reads);
  EXPECT_EQ(A.Writes, B.Writes);
  EXPECT_EQ(A.L1Hits, B.L1Hits);
  EXPECT_EQ(A.L1Misses, B.L1Misses);
  EXPECT_EQ(A.L2Hits, B.L2Hits);
  EXPECT_EQ(A.L2Misses, B.L2Misses);
  EXPECT_EQ(A.TlbMisses, B.TlbMisses);
  EXPECT_EQ(A.PrefetchFullHits, B.PrefetchFullHits);
  EXPECT_EQ(A.PrefetchPartialHits, B.PrefetchPartialHits);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.BytesAccessed, B.BytesAccessed);
  EXPECT_EQ(A.BlocksFetched, B.BlocksFetched);
  EXPECT_EQ(A.BytesFetched, B.BytesFetched);
  EXPECT_EQ(A.BytesUsed, B.BytesUsed);
  EXPECT_EQ(A.BlocksEvicted, B.BlocksEvicted);
  EXPECT_EQ(A.Writebacks, B.Writebacks);
}

} // namespace

TEST(RegionRegistry, DefinesDeduplicateByNameAndColor) {
  RegionRegistry Registry;
  uint32_t A = Registry.define("tree");
  EXPECT_NE(A, RegionRegistry::Unknown);
  EXPECT_EQ(Registry.define("tree"), A);
  uint32_t Hot = Registry.define(RegionInfo{"tree", "hot", {}});
  EXPECT_NE(Hot, A);
  EXPECT_EQ(Registry.define(RegionInfo{"tree", "hot", {}}), Hot);
  EXPECT_EQ(Registry.regionCount(), 3u); // (unknown) + tree + tree[hot]
  EXPECT_EQ(Registry.info(RegionRegistry::Unknown).Name, "(unknown)");
}

TEST(RegionRegistry, ResolvesRangeBoundaries) {
  RegionRegistry Registry;
  uint32_t A = Registry.define("a");
  uint32_t B = Registry.define(RegionInfo{"b", "hot", "here.cpp:1"});
  Registry.addRange(uint64_t(0x2000), 0x100, B); // out-of-order insert
  Registry.addRange(uint64_t(0x1000), 0x100, A);
  EXPECT_EQ(Registry.rangeCount(), 2u);

  EXPECT_EQ(Registry.resolve(0x0FFF), RegionRegistry::Unknown);
  EXPECT_EQ(Registry.resolve(0x1000), A);
  EXPECT_EQ(Registry.resolve(0x10FF), A);
  EXPECT_EQ(Registry.resolve(0x1100), RegionRegistry::Unknown);
  EXPECT_EQ(Registry.resolve(0x1FFF), RegionRegistry::Unknown);
  EXPECT_EQ(Registry.resolve(0x2080), B);
  EXPECT_EQ(Registry.resolve(0x2100), RegionRegistry::Unknown);
  EXPECT_EQ(Registry.info(B).ColorClass, "hot");

  // Interleaved resolves must not be confused by the locality cache.
  EXPECT_EQ(Registry.resolve(0x1080), A);
  EXPECT_EQ(Registry.resolve(0x2080), B);
  EXPECT_EQ(Registry.resolve(0x1080), A);

  // Re-adding a range with the same base (allocator re-sync) is a no-op.
  Registry.addRange(uint64_t(0x1000), 0x100, A);
  EXPECT_EQ(Registry.rangeCount(), 2u);

  Registry.clear();
  EXPECT_EQ(Registry.regionCount(), 1u);
  EXPECT_EQ(Registry.rangeCount(), 0u);
  EXPECT_EQ(Registry.resolve(0x1000), RegionRegistry::Unknown);
}

TEST(RegionRegistry, RegistersArenaSlabsIdempotently) {
  Arena Storage(/*SlabBytes=*/4096, /*SlabAlign=*/4096);
  void *P = Storage.allocate(128);
  RegionRegistry Registry;
  uint32_t Id = Registry.registerArena(Storage, "nodes");
  EXPECT_EQ(Registry.resolve(vaddr(P)), Id);

  // Grow into a second slab, then re-register: same id, new slab covered,
  // no duplicate ranges for the old one.
  size_t RangesBefore = Registry.rangeCount();
  void *Q = Storage.allocate(6000);
  EXPECT_EQ(Registry.resolve(vaddr(Q)), RegionRegistry::Unknown);
  EXPECT_EQ(Registry.registerArena(Storage, "nodes"), Id);
  EXPECT_EQ(Registry.resolve(vaddr(Q)), Id);
  EXPECT_EQ(Registry.resolve(vaddr(P)), Id);
  EXPECT_GT(Registry.rangeCount(), RangesBefore);
}

TEST(RegionRegistry, RegistersColoredArenaHotAndCold) {
  CacheParams Params;
  Params.CacheSets = 64;
  Params.Associativity = 1;
  Params.BlockBytes = 64;
  Params.PageBytes = 4096;
  Params.HotSets = 32;
  ASSERT_TRUE(Params.isValid());
  ColoredArena Storage(Params);
  void *Hot = Storage.allocateHot(64);
  void *Cold = Storage.allocateCold(64);
  ASSERT_TRUE(Storage.isHot(Hot));
  ASSERT_FALSE(Storage.isHot(Cold));

  RegionRegistry Registry;
  uint32_t HotId = Registry.registerColoredArena(Storage, "ctree");
  EXPECT_EQ(Registry.resolve(vaddr(Hot)), HotId);
  EXPECT_EQ(Registry.info(HotId).Name, "ctree");
  EXPECT_EQ(Registry.info(HotId).ColorClass, "hot");

  uint32_t ColdId = Registry.resolve(vaddr(Cold));
  EXPECT_NE(ColdId, RegionRegistry::Unknown);
  EXPECT_NE(ColdId, HotId);
  EXPECT_EQ(Registry.info(ColdId).Name, "ctree");
  EXPECT_EQ(Registry.info(ColdId).ColorClass, "cold");
}

TEST(RegionRegistry, RegistersHeapPages) {
  heap::CcHeap Heap;
  void *P = Heap.allocate(40);
  void *Q = Heap.allocate(96);
  RegionRegistry Registry;
  uint32_t Id = Registry.registerHeap(Heap, "ccheap");
  EXPECT_EQ(Registry.resolve(vaddr(P)), Id);
  EXPECT_EQ(Registry.resolve(vaddr(Q)), Id);
}

TEST(Attribution, BlockUtilizationTracksResidencies) {
  RegionRegistry Registry;
  uint32_t Region = Registry.define("synthetic");
  AttributionConfig Config;
  Config.L1BlockBytes = 16;
  Config.L1Sets = 4;
  Config.L2BlockBytes = 64;
  Config.L2Sets = 8;
  Config.HotSets = 2;
  AttributionSink Sink(Registry, Config);

  AccessEvent Fill; // memory fill opens a residency for mapped block 5
  Fill.Mapped = 5 * 64;
  Fill.Size = 8;
  Fill.Level = AccessLevel::Memory;
  Fill.Cycles = 70;
  Sink.record(Fill, Region);

  AccessEvent Touch; // second touch marks 4 more bytes at offset 16
  Touch.Mapped = 5 * 64 + 16;
  Touch.Size = 4;
  Touch.Level = AccessLevel::L1Hit;
  Touch.Cycles = 1;
  Sink.record(Touch, Region);

  // A dirty eviction closes the residency: 12 of 64 bytes were touched.
  Sink.recordEvict(EvictEvent{2, true, 5 * 64, 100});
  {
    const RegionProfile &P = Sink.regions()[Region];
    EXPECT_EQ(P.BlocksFetched, 1u);
    EXPECT_EQ(P.BytesFetched, 64u);
    EXPECT_EQ(P.BytesUsed, 12u);
    EXPECT_EQ(P.BlocksEvicted, 1u);
    EXPECT_EQ(P.Writebacks, 1u);
    EXPECT_DOUBLE_EQ(P.blockUtilization(), 12.0 / 64.0);
  }
  EXPECT_EQ(Sink.l2SetMisses()[5], 1u);
  EXPECT_EQ(Sink.l2SetEvictions()[5], 1u);
  EXPECT_EQ(Sink.l1SetMisses()[(5 * 64 / 16) % 4], 1u);

  // Evicting a block this sink never saw filled only bumps the per-set
  // eviction histogram (trace sampling can drop the fill).
  Sink.recordEvict(EvictEvent{2, false, 99 * 64, 120});
  EXPECT_EQ(Sink.regions()[Region].BlocksFetched, 1u);
  EXPECT_EQ(Sink.l2SetEvictions()[99 % 8], 1u);

  // L1 evictions carry no residency and must be ignored.
  Sink.recordEvict(EvictEvent{1, false, 5 * 64, 130});
  EXPECT_EQ(Sink.regions()[Region].BlocksFetched, 1u);

  // finalize() closes still-open residencies without counting evictions.
  AccessEvent Fill2;
  Fill2.Mapped = 6 * 64;
  Fill2.Size = 16;
  Fill2.Level = AccessLevel::PrefetchPartial;
  Fill2.Cycles = 30;
  Sink.record(Fill2, Region);
  Sink.finalize();
  const RegionProfile &P = Sink.regions()[Region];
  EXPECT_EQ(P.BlocksFetched, 2u);
  EXPECT_EQ(P.BytesUsed, 28u);
  EXPECT_EQ(P.BlocksEvicted, 1u);
  EXPECT_EQ(P.L2Misses, 2u);
  EXPECT_EQ(P.PrefetchPartialHits, 1u);
  EXPECT_EQ(P.references(), 3u);

  Sink.reset();
  EXPECT_EQ(Sink.totals().references(), 0u);
  EXPECT_EQ(Sink.accessEvents(), 0u);
  EXPECT_EQ(Sink.l2SetMisses()[5], 0u);
}

TEST(Attribution, LiveSinkReconcilesWithSimStats) {
  Arena Storage(1 << 16, 1 << 16);
  char *Buffer = static_cast<char *>(Storage.allocate(16384, 16));
  RegionRegistry Registry;
  uint32_t Region = Registry.registerArena(Storage, "buffer");

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  sim::MemoryHierarchy M(Config);
  AttributionSink Sink(Registry, AttributionConfig::fromHierarchy(Config));
  M.attachObserver(&Sink);

  // Strided reads and writes inside the region, plus a handful of
  // accesses to an unregistered address range.
  for (uint64_t Off = 0; Off + 8 <= 16384; Off += 16)
    M.read(vaddr(Buffer + Off), 8);
  for (uint64_t Off = 0; Off + 8 <= 16384; Off += 64)
    M.write(vaddr(Buffer + Off), 8);
  const uint64_t Outside = 0x7fee00000000ULL;
  for (unsigned I = 0; I < 32; ++I)
    M.read(Outside + I * 256, 4);
  Sink.finalize();

  const sim::SimStats &S = M.stats();
  ASSERT_TRUE(S.isConsistent());
  RegionProfile Total = Sink.totals();
  EXPECT_EQ(Sink.accessEvents(), S.memoryReferences());
  EXPECT_EQ(Total.Reads, S.Reads);
  EXPECT_EQ(Total.Writes, S.Writes);
  EXPECT_EQ(Total.L1Hits, S.L1Hits);
  EXPECT_EQ(Total.L1Misses, S.L1Misses);
  EXPECT_EQ(Total.L2Hits, S.L2Hits);
  EXPECT_EQ(Total.L2Misses, S.L2Misses);
  EXPECT_EQ(Total.TlbMisses, S.TlbMisses);
  EXPECT_EQ(Total.Cycles, M.now());

  // Region split: everything except the 32 outside reads belongs to the
  // registered buffer, and the byte counts match the access pattern.
  const RegionProfile &Mine = Sink.regions()[Region];
  const RegionProfile &Unknown = Sink.regions()[RegionRegistry::Unknown];
  EXPECT_EQ(Unknown.references(), 32u);
  EXPECT_EQ(Mine.references(), S.memoryReferences() - 32);
  EXPECT_EQ(Mine.BytesAccessed, 1024u * 8 + 256u * 8);

  // Every fetched block was closed exactly once, by an eviction event or
  // by finalize().
  EXPECT_EQ(Total.BlocksFetched, S.L2Misses + S.PrefetchFullHits);
  EXPECT_EQ(Total.BytesFetched, Total.BlocksFetched * Config.L2.BlockBytes);
  EXPECT_GT(Total.BytesUsed, 0u);
  EXPECT_LE(Total.BytesUsed, Total.BytesFetched);

  // Histogram mass equals the corresponding miss counters.
  uint64_t L1Mass = 0;
  for (uint64_t Count : Sink.l1SetMisses())
    L1Mass += Count;
  EXPECT_EQ(L1Mass, S.L1Misses);
  uint64_t L2Mass = 0;
  for (uint64_t Count : Sink.l2SetMisses())
    L2Mass += Count;
  EXPECT_EQ(L2Mass, S.L2Misses + S.PrefetchFullHits);
}

TEST(TraceSink, SamplesEveryNthEvent) {
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  AttributionConfig Config;
  TraceSinkOptions Options;
  Options.SampleInterval = 4;
  Options.IncludePrefetches = false;

  TraceSink Sink(F, Config, nullptr, Options);
  AccessEvent Event;
  Event.Size = 8;
  for (unsigned I = 0; I < 10; ++I) {
    Event.VAddr = I * 16;
    Sink.onAccess(Event);
  }
  PrefetchEvent Prefetch;
  Sink.onPrefetch(Prefetch); // suppressed by IncludePrefetches = false
  EXPECT_EQ(Sink.accessEventsSeen(), 10u);
  EXPECT_EQ(Sink.linesWritten(), 4u); // meta + access events 0, 4, 8

  std::rewind(F);
  unsigned AccessRecords = 0, MetaRecords = 0, PrefetchRecords = 0;
  uint64_t Sample = 0;
  long Parsed = readTraceFile(F, [&](const TraceRecord &Record) {
    switch (Record.RecordKind) {
    case TraceRecord::Kind::Access:
      ++AccessRecords;
      break;
    case TraceRecord::Kind::Meta:
      ++MetaRecords;
      Sample = Record.SampleInterval;
      break;
    case TraceRecord::Kind::Prefetch:
      ++PrefetchRecords;
      break;
    default:
      break;
    }
  });
  std::fclose(F);
  EXPECT_EQ(Parsed, 4);
  EXPECT_EQ(MetaRecords, 1u);
  EXPECT_EQ(AccessRecords, 3u);
  EXPECT_EQ(PrefetchRecords, 0u);
  EXPECT_EQ(Sample, 4u);
}

TEST(TraceExport, JsonlRoundTripRebuildsIdenticalProfile) {
  Arena Storage(1 << 16, 1 << 16);
  char *Buffer = static_cast<char *>(Storage.allocate(8192, 16));
  RegionRegistry Registry;
  Registry.registerArena(Storage, "tree");

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  Config.Prefetch.NextLineDegree = 1; // exercise hw-prefetch records too
  AttributionConfig AConfig = AttributionConfig::fromHierarchy(Config, 64);
  sim::MemoryHierarchy M(Config);

  AttributionSink Live(Registry, AConfig);
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  TraceSink Trace(F, AConfig, &Registry);
  MultiObserver Fan;
  Fan.add(&Live);
  Fan.add(&Trace);
  M.attachObserver(&Fan);

  for (uint64_t Off = 0; Off + 8 <= 8192; Off += 8) {
    if (Off % 128 == 0)
      M.prefetch(vaddr(Buffer + (Off + 256) % 8192));
    if (Off % 32 == 0)
      M.write(vaddr(Buffer + Off), 8);
    else
      M.read(vaddr(Buffer + Off), 8);
  }
  for (unsigned I = 0; I < 64; ++I) // TLB misses, unknown region
    M.read(0x7fdd00000000ULL + I * 4096, 8);
  Live.finalize();

  // Rebuild a second sink purely from the JSONL dump. The same registry
  // is reused, so trace region ids need no remapping.
  std::rewind(F);
  std::unique_ptr<AttributionSink> Replayed;
  long Parsed = readTraceFile(F, [&](const TraceRecord &Record) {
    switch (Record.RecordKind) {
    case TraceRecord::Kind::Meta:
      Replayed = std::make_unique<AttributionSink>(Registry, Record.Config);
      break;
    case TraceRecord::Kind::Region:
      break;
    case TraceRecord::Kind::Access:
      ASSERT_NE(Replayed, nullptr);
      Replayed->record(Record.Access, Record.RegionId);
      break;
    case TraceRecord::Kind::Evict:
      Replayed->recordEvict(Record.Evict);
      break;
    case TraceRecord::Kind::Prefetch:
      Replayed->onPrefetch(Record.Prefetch);
      break;
    case TraceRecord::Kind::Shard:
      break; // No replayParallel calls in this run.
    }
  });
  std::fclose(F);
  ASSERT_NE(Replayed, nullptr);
  EXPECT_EQ(uint64_t(Parsed), Trace.linesWritten());
  Replayed->finalize();

  // The meta record must carry the full geometry...
  EXPECT_EQ(Replayed->config().L1BlockBytes, AConfig.L1BlockBytes);
  EXPECT_EQ(Replayed->config().L1Sets, AConfig.L1Sets);
  EXPECT_EQ(Replayed->config().L2BlockBytes, AConfig.L2BlockBytes);
  EXPECT_EQ(Replayed->config().L2Sets, AConfig.L2Sets);
  EXPECT_EQ(Replayed->config().HotSets, 64u);

  // ...and the rebuilt profile must be bit-identical to the live one.
  EXPECT_EQ(Replayed->accessEvents(), Live.accessEvents());
  EXPECT_EQ(Replayed->swPrefetches(), Live.swPrefetches());
  ASSERT_EQ(Replayed->regions().size(), Live.regions().size());
  for (size_t I = 0; I < Live.regions().size(); ++I) {
    SCOPED_TRACE("region " + std::to_string(I));
    expectProfileEq(Live.regions()[I], Replayed->regions()[I]);
  }
  EXPECT_EQ(Live.l1SetMisses(), Replayed->l1SetMisses());
  EXPECT_EQ(Live.l2SetMisses(), Replayed->l2SetMisses());
  EXPECT_EQ(Live.l2SetEvictions(), Replayed->l2SetEvictions());
}

TEST(ProfileExport, JsonAndCsvCarrySchemaAndRegions) {
  RegionRegistry Registry;
  uint32_t Region = Registry.define(RegionInfo{"btree", "hot", {}});
  AttributionConfig Config;
  Config.L2BlockBytes = 64;
  Config.L2Sets = 8;
  AttributionSink Sink(Registry, Config);
  AccessEvent Fill;
  Fill.Mapped = 3 * 64;
  Fill.Size = 8;
  Fill.Level = AccessLevel::Memory;
  Fill.Cycles = 70;
  Sink.record(Fill, Region);
  Sink.finalize();

  std::FILE *Json = std::tmpfile();
  ASSERT_NE(Json, nullptr);
  writeProfileJson(Sink, Json);
  std::string JsonText = slurp(Json);
  std::fclose(Json);
  EXPECT_NE(JsonText.find("\"schema\":\"ccl-profile-v1\""), std::string::npos);
  EXPECT_NE(JsonText.find("\"name\":\"btree\""), std::string::npos);
  EXPECT_NE(JsonText.find("\"color\":\"hot\""), std::string::npos);
  EXPECT_NE(JsonText.find("\"block_utilization\":0.125000"),
            std::string::npos);
  EXPECT_NE(JsonText.find("\"l2_set_conflicts\":[[3,1,0]]"),
            std::string::npos);

  std::FILE *Csv = std::tmpfile();
  ASSERT_NE(Csv, nullptr);
  writeProfileCsv(Sink, Csv);
  std::string CsvText = slurp(Csv);
  std::fclose(Csv);
  EXPECT_EQ(CsvText.rfind("region,color,reads,", 0), 0u);
  EXPECT_NE(CsvText.find("btree,hot,1,0,1,1,"), std::string::npos);
}

TEST(TraceExport, ShardTelemetryRoundTripsThroughDumpAndProfile) {
  AttributionConfig Config;
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  TraceSink Trace(F, Config);

  ReplayShardingEvent Parallel;
  Parallel.Shards = 256;
  Parallel.Groups = 16;
  Parallel.Workers = 5;
  Parallel.Records = 100000;
  Parallel.MinShardRecords = 300;
  Parallel.MaxShardRecords = 500;
  Parallel.Parallel = true;
  Trace.onReplaySharding(Parallel);

  ReplayShardingEvent Serial;
  Serial.Shards = 256;
  Serial.Records = 2000;
  Serial.Reason = "single-thread pool";
  Trace.onReplaySharding(Serial);

  std::rewind(F);
  ReplayShardingSummary Summary;
  uint64_t ShardLines = 0;
  long Parsed = readTraceFile(F, [&](const TraceRecord &Record) {
    if (Record.RecordKind != TraceRecord::Kind::Shard)
      return;
    ++ShardLines;
    Summary.add(Record.Sharding);
  });
  std::fclose(F);
  EXPECT_EQ(uint64_t(Parsed), Trace.linesWritten());
  ASSERT_EQ(ShardLines, 2u);
  EXPECT_EQ(Summary.Replays, 2u);
  EXPECT_EQ(Summary.ParallelReplays, 1u);
  EXPECT_EQ(Summary.Records, 102000u);
  EXPECT_EQ(Summary.Shards, 256u);
  EXPECT_EQ(Summary.Workers, 5u);
  EXPECT_NEAR(Summary.MaxImbalance, 500.0 * 256 / 100000, 1e-9);
  EXPECT_EQ(Summary.LastSerialReason, "single-thread pool");

  // The summary rides along in the profile JSON — and only when it saw
  // replays, so pre-sharding dumps keep producing byte-stable output.
  RegionRegistry Registry;
  AttributionSink Sink(Registry, Config);
  Sink.finalize();
  std::FILE *Json = std::tmpfile();
  ASSERT_NE(Json, nullptr);
  writeProfileJson(Sink, Json, &Summary);
  std::string WithShards = slurp(Json);
  std::fclose(Json);
  EXPECT_NE(WithShards.find("\"replay_sharding\":{\"replays\":2"),
            std::string::npos);
  EXPECT_NE(WithShards.find("\"serial_reason\":\"single-thread pool\""),
            std::string::npos);

  ReplayShardingSummary Empty;
  Json = std::tmpfile();
  ASSERT_NE(Json, nullptr);
  writeProfileJson(Sink, Json, &Empty);
  std::string WithoutShards = slurp(Json);
  std::fclose(Json);
  EXPECT_EQ(WithoutShards.find("replay_sharding"), std::string::npos);
}

TEST(MultiObserver, FansOutInAttachOrder) {
  struct Counter final : SimObserver {
    unsigned Accesses = 0, Evicts = 0, Prefetches = 0;
    void onAccess(const AccessEvent &) override { ++Accesses; }
    void onEvict(const EvictEvent &) override { ++Evicts; }
    void onPrefetch(const PrefetchEvent &) override { ++Prefetches; }
  };
  Counter A, B;
  MultiObserver Fan;
  Fan.add(&A);
  Fan.add(nullptr); // ignored
  Fan.add(&B);
  Fan.onAccess(AccessEvent{});
  Fan.onAccess(AccessEvent{});
  Fan.onEvict(EvictEvent{});
  Fan.onPrefetch(PrefetchEvent{});
  EXPECT_EQ(A.Accesses, 2u);
  EXPECT_EQ(B.Accesses, 2u);
  EXPECT_EQ(A.Evicts, 1u);
  EXPECT_EQ(B.Evicts, 1u);
  EXPECT_EQ(A.Prefetches, 1u);
  EXPECT_EQ(B.Prefetches, 1u);
}

TEST(TraceReader, ParsesRecordsAndSkipsJunk) {
  TraceRecord Record;
  EXPECT_FALSE(parseTraceLine("", Record));
  EXPECT_FALSE(parseTraceLine("not json", Record));
  EXPECT_FALSE(parseTraceLine("{\"kind\":\"future-thing\"}", Record));

  ASSERT_TRUE(parseTraceLine(
      "{\"kind\":\"a\",\"now\":100,\"va\":4096,\"pa\":8192,\"sz\":8,"
      "\"w\":1,\"lvl\":\"pf-part\",\"tlb\":1,\"cyc\":70,\"r\":3}",
      Record));
  EXPECT_EQ(Record.RecordKind, TraceRecord::Kind::Access);
  EXPECT_EQ(Record.RegionId, 3u);
  EXPECT_EQ(Record.Access.Now, 100u);
  EXPECT_EQ(Record.Access.VAddr, 4096u);
  EXPECT_EQ(Record.Access.Mapped, 8192u);
  EXPECT_EQ(Record.Access.Size, 8u);
  EXPECT_TRUE(Record.Access.IsWrite);
  EXPECT_TRUE(Record.Access.TlbMiss);
  EXPECT_EQ(Record.Access.Level, AccessLevel::PrefetchPartial);
  EXPECT_EQ(Record.Access.Cycles, 70u);

  ASSERT_TRUE(parseTraceLine(
      "{\"kind\":\"meta\",\"schema\":\"ccl-trace-v1\",\"l1_block\":32,"
      "\"l1_sets\":512,\"l2_block\":128,\"l2_sets\":2048,\"hot_sets\":7,"
      "\"sample\":16}",
      Record));
  EXPECT_EQ(Record.RecordKind, TraceRecord::Kind::Meta);
  EXPECT_EQ(Record.Config.L1BlockBytes, 32u);
  EXPECT_EQ(Record.Config.L1Sets, 512u);
  EXPECT_EQ(Record.Config.L2BlockBytes, 128u);
  EXPECT_EQ(Record.Config.L2Sets, 2048u);
  EXPECT_EQ(Record.Config.HotSets, 7u);
  EXPECT_EQ(Record.SampleInterval, 16u);

  ASSERT_TRUE(parseTraceLine(
      "{\"kind\":\"e\",\"now\":55,\"lvl\":2,\"pa\":320,\"wb\":1}", Record));
  EXPECT_EQ(Record.RecordKind, TraceRecord::Kind::Evict);
  EXPECT_EQ(Record.Evict.Level, 2u);
  EXPECT_EQ(Record.Evict.MappedBlockAddr, 320u);
  EXPECT_TRUE(Record.Evict.Writeback);
}
