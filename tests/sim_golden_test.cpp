//===- tests/sim_golden_test.cpp - Bit-exact simulator regression -----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Golden-statistics regression tests: fixed traces (pointer-chase,
// strided, prefetch-heavy) replayed through both paper presets must
// reproduce the exact event counts and cycle attribution recorded from
// the original scalar simulator implementation. This is the gate proving
// that hot-path optimizations (MRU fast paths, SoA tag arrays, flat maps,
// O(1) TLB LRU) change nothing observable.
//
// Also asserts that a SweepRunner grid produces statistics identical to a
// serial run of the same grid, that the batched readTrace() entry point
// matches per-call read()/write(), and that a TraceBuffer recording
// replayed through the trace engine reproduces the same goldens.
//
//===----------------------------------------------------------------------===//

#include "obs/Observer.h"
#include "sim/MemoryHierarchy.h"
#include "sim/TraceBuffer.h"
#include "support/SweepRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ccl;
using namespace ccl::sim;

namespace {

// Hermetic 64-bit LCG (MMIX constants) so the traces never depend on
// library RNG implementations.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
};

struct TraceOp {
  uint64_t Addr;
  uint32_t Size;
  uint8_t Kind; // 0 = read, 1 = write, 2 = prefetch, 3 = tick
};

std::vector<TraceOp> pointerChaseTrace() {
  // A pseudo-random pointer chase over 1<<15 64-byte "nodes" based at a
  // fixed virtual address: each step reads the 8-byte "next" field.
  std::vector<TraceOp> Ops;
  const uint64_t Base = 0x7f1200000000ULL;
  const uint64_t Nodes = 1ULL << 15;
  Lcg Rng(0xCC1A70u);
  uint64_t Node = 0;
  for (unsigned I = 0; I < 200000; ++I) {
    Ops.push_back({Base + Node * 64, 8, 0});
    Node = Rng.next() % Nodes;
  }
  return Ops;
}

std::vector<TraceOp> stridedTrace() {
  // Strided sweep with a 48-byte stride (crosses block boundaries) and a
  // write every fourth access; three passes over a 1.5 MB region.
  std::vector<TraceOp> Ops;
  const uint64_t Base = 0x7f3400000000ULL;
  const uint64_t Region = 3ULL << 19;
  for (unsigned Pass = 0; Pass < 3; ++Pass)
    for (uint64_t Off = 0; Off + 16 <= Region; Off += 48)
      Ops.push_back({Base + Off, 16, uint8_t(Off / 48 % 4 == 3 ? 1 : 0)});
  return Ops;
}

std::vector<TraceOp> prefetchTrace() {
  // Strided reads with software prefetches issued 4 blocks ahead and
  // compute ticks between accesses; exercises the in-flight fill map.
  std::vector<TraceOp> Ops;
  const uint64_t Base = 0x7f5600000000ULL;
  for (unsigned I = 0; I < 60000; ++I) {
    uint64_t Addr = Base + uint64_t(I) * 64;
    Ops.push_back({Addr + 4 * 64, 1, 2});
    Ops.push_back({Addr, 8, 0});
    Ops.push_back({20, 0, 3});
  }
  return Ops;
}

void replay(MemoryHierarchy &M, const std::vector<TraceOp> &Ops) {
  for (const TraceOp &Op : Ops) {
    switch (Op.Kind) {
    case 0:
      M.read(Op.Addr, Op.Size);
      break;
    case 1:
      M.write(Op.Addr, Op.Size);
      break;
    case 2:
      M.prefetch(Op.Addr);
      break;
    case 3:
      M.tick(Op.Addr);
      break;
    }
  }
}

std::vector<TraceOp> traceByName(const std::string &Name) {
  if (Name == "pointer-chase")
    return pointerChaseTrace();
  if (Name == "strided")
    return stridedTrace();
  return prefetchTrace();
}

HierarchyConfig presetByName(const std::string &Name,
                             const std::string &Trace) {
  HierarchyConfig Config = Name == "e5000"
                               ? HierarchyConfig::ultraSparcE5000()
                               : HierarchyConfig::rsimTable1();
  // The prefetch trace also turns on the next-line prefetcher so the
  // hardware-prefetch path and the in-flight map are locked down.
  if (Trace == "prefetch")
    Config.Prefetch.NextLineDegree = 1;
  return Config;
}

/// Every externally observable number a simulation produces.
struct GoldenStats {
  uint64_t Reads, Writes, L1Hits, L1Misses, L2Hits, L2Misses;
  uint64_t TlbMisses, Writebacks, SwPrefetches, HwPrefetches;
  uint64_t PrefetchFullHits, PrefetchPartialHits;
  uint64_t BusyCycles, L1StallCycles, L2StallCycles, TlbStallCycles;
  uint64_t PrefetchIssueCycles;
  uint64_t Now, L1Evictions, L1Writebacks, L2Evictions, L2Writebacks;
  uint64_t TlbHits, TlbMissCount;
};

GoldenStats collect(const MemoryHierarchy &M) {
  const SimStats &S = M.stats();
  return {S.Reads,
          S.Writes,
          S.L1Hits,
          S.L1Misses,
          S.L2Hits,
          S.L2Misses,
          S.TlbMisses,
          S.Writebacks,
          S.SwPrefetches,
          S.HwPrefetches,
          S.PrefetchFullHits,
          S.PrefetchPartialHits,
          S.BusyCycles,
          S.L1StallCycles,
          S.L2StallCycles,
          S.TlbStallCycles,
          S.PrefetchIssueCycles,
          M.now(),
          M.l1().evictions(),
          M.l1().writebacks(),
          M.l2().evictions(),
          M.l2().writebacks(),
          M.tlb().hits(),
          M.tlb().misses()};
}

struct GoldenCase {
  const char *Trace;
  const char *Preset;
  GoldenStats Expected;
};

// Recorded from the seed implementation (commit ddc91ce): scalar cache
// scan, std::unordered_map in-flight/unit maps, timestamp-scan TLB.
// Regenerate only if the *model* intentionally changes, never for a
// performance change.
const GoldenCase GoldenCases[] = {
    {"pointer-chase", "e5000",
     {200000, 0, 1586, 198414, 90318, 108096,
      149955, 0, 0, 0, 0, 0,
      200000, 1190484, 6918144, 5998200, 0,
      14306828, 198158, 0, 91712, 0, 50045, 149955}},
    {"pointer-chase", "rsim",
     {200000, 0, 1567, 198433, 23306, 175127,
      149955, 0, 0, 0, 0, 0,
      200000, 1785897, 10507620, 5998200, 0,
      18491717, 198305, 0, 173079, 0, 50045, 149955}},
    {"strided", "e5000",
     {73728, 24576, 0, 98304, 40960, 57344,
      576, 13652, 0, 0, 0, 0,
      98304, 589824, 3670016, 23040, 0,
      4381184, 97280, 24320, 40960, 13652, 97728, 576}},
    {"strided", "rsim",
     {73728, 24576, 61440, 36864, 0, 36864,
      576, 11605, 0, 0, 0, 0,
      98304, 331776, 2211840, 23040, 0,
      2664960, 36736, 24490, 34816, 11605, 97728, 576}},
    {"prefetch", "e5000",
     {60000, 0, 0, 60000, 59996, 4,
      469, 0, 60000, 2, 59996, 2,
      1260000, 360000, 200, 18760, 60000,
      1698960, 59744, 0, 43616, 0, 59531, 469}},
    {"prefetch", "rsim",
     {60000, 0, 30000, 30000, 29998, 2,
      469, 0, 60000, 1, 29998, 1,
      1260000, 270000, 67, 18760, 60000,
      1608827, 29872, 0, 27952, 0, 59531, 469}},
};

void expectEqual(const GoldenStats &Expected, const GoldenStats &Actual,
                 const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Expected.Reads, Actual.Reads);
  EXPECT_EQ(Expected.Writes, Actual.Writes);
  EXPECT_EQ(Expected.L1Hits, Actual.L1Hits);
  EXPECT_EQ(Expected.L1Misses, Actual.L1Misses);
  EXPECT_EQ(Expected.L2Hits, Actual.L2Hits);
  EXPECT_EQ(Expected.L2Misses, Actual.L2Misses);
  EXPECT_EQ(Expected.TlbMisses, Actual.TlbMisses);
  EXPECT_EQ(Expected.Writebacks, Actual.Writebacks);
  EXPECT_EQ(Expected.SwPrefetches, Actual.SwPrefetches);
  EXPECT_EQ(Expected.HwPrefetches, Actual.HwPrefetches);
  EXPECT_EQ(Expected.PrefetchFullHits, Actual.PrefetchFullHits);
  EXPECT_EQ(Expected.PrefetchPartialHits, Actual.PrefetchPartialHits);
  EXPECT_EQ(Expected.BusyCycles, Actual.BusyCycles);
  EXPECT_EQ(Expected.L1StallCycles, Actual.L1StallCycles);
  EXPECT_EQ(Expected.L2StallCycles, Actual.L2StallCycles);
  EXPECT_EQ(Expected.TlbStallCycles, Actual.TlbStallCycles);
  EXPECT_EQ(Expected.PrefetchIssueCycles, Actual.PrefetchIssueCycles);
  EXPECT_EQ(Expected.Now, Actual.Now);
  EXPECT_EQ(Expected.L1Evictions, Actual.L1Evictions);
  EXPECT_EQ(Expected.L1Writebacks, Actual.L1Writebacks);
  EXPECT_EQ(Expected.L2Evictions, Actual.L2Evictions);
  EXPECT_EQ(Expected.L2Writebacks, Actual.L2Writebacks);
  EXPECT_EQ(Expected.TlbHits, Actual.TlbHits);
  EXPECT_EQ(Expected.TlbMissCount, Actual.TlbMissCount);
}

// Counts every delivered event; used to prove that attaching an
// observer leaves the golden statistics bit-identical and that the
// event stream reconciles exactly with those statistics.
struct TallyObserver final : obs::SimObserver {
  uint64_t Accesses = 0, WriteEvents = 0, TlbMissEvents = 0;
  uint64_t LevelCounts[5] = {};
  uint64_t EventCycles = 0;
  uint64_t EvictEvents[3] = {};     // indexed by EvictEvent::Level
  uint64_t WritebackEvents[3] = {}; // likewise
  uint64_t SwPrefetchEvents = 0, HwPrefetchEvents = 0;

  void onAccess(const obs::AccessEvent &Event) override {
    ++Accesses;
    WriteEvents += Event.IsWrite;
    TlbMissEvents += Event.TlbMiss;
    ++LevelCounts[size_t(Event.Level)];
    EventCycles += Event.Cycles;
  }
  void onEvict(const obs::EvictEvent &Event) override {
    ++EvictEvents[Event.Level];
    WritebackEvents[Event.Level] += Event.Writeback;
  }
  void onPrefetch(const obs::PrefetchEvent &Event) override {
    ++(Event.Software ? SwPrefetchEvents : HwPrefetchEvents);
  }

  uint64_t level(obs::AccessLevel L) const { return LevelCounts[size_t(L)]; }
};

} // namespace

TEST(SimGolden, StatsMatchSeedImplementation) {
  for (const GoldenCase &Case : GoldenCases) {
    MemoryHierarchy M(presetByName(Case.Preset, Case.Trace));
    replay(M, traceByName(Case.Trace));
    expectEqual(Case.Expected, collect(M),
                std::string(Case.Trace) + "/" + Case.Preset);
  }
}

TEST(SimGolden, ObservedRunsStayBitIdentical) {
  // Attaching an observer must not perturb a single statistic in any of
  // the six golden combinations, and the delivered event stream must
  // reconcile exactly with the counters the simulator kept itself.
  for (const GoldenCase &Case : GoldenCases) {
    SCOPED_TRACE(std::string("observed/") + Case.Trace + "/" + Case.Preset);
    MemoryHierarchy M(presetByName(Case.Preset, Case.Trace));
    TallyObserver Tally;
    M.attachObserver(&Tally);
    std::vector<TraceOp> Ops = traceByName(Case.Trace);
    replay(M, Ops);
    expectEqual(Case.Expected, collect(M), "golden stats");

    const SimStats &S = M.stats();
    EXPECT_TRUE(S.isConsistent());
    EXPECT_EQ(Tally.Accesses, S.memoryReferences());
    EXPECT_EQ(Tally.WriteEvents, S.Writes);
    EXPECT_EQ(Tally.TlbMissEvents, S.TlbMisses);
    EXPECT_EQ(Tally.level(obs::AccessLevel::L1Hit), S.L1Hits);
    EXPECT_EQ(Tally.level(obs::AccessLevel::L2Hit) +
                  Tally.level(obs::AccessLevel::PrefetchFull),
              S.L2Hits);
    EXPECT_EQ(Tally.level(obs::AccessLevel::Memory) +
                  Tally.level(obs::AccessLevel::PrefetchPartial),
              S.L2Misses);
    EXPECT_EQ(Tally.level(obs::AccessLevel::PrefetchFull),
              S.PrefetchFullHits);
    EXPECT_EQ(Tally.level(obs::AccessLevel::PrefetchPartial),
              S.PrefetchPartialHits);
    EXPECT_EQ(Tally.SwPrefetchEvents, S.SwPrefetches);
    EXPECT_EQ(Tally.HwPrefetchEvents, S.HwPrefetches);
    EXPECT_EQ(Tally.EvictEvents[1], M.l1().evictions());
    EXPECT_EQ(Tally.EvictEvents[2], M.l2().evictions());
    EXPECT_EQ(Tally.WritebackEvents[1], M.l1().writebacks());
    EXPECT_EQ(Tally.WritebackEvents[2], M.l2().writebacks());

    // Every simulated cycle is accounted for: access events carry their
    // stall-inclusive cost, and what remains is exactly tick() busy time
    // plus software-prefetch issue cost.
    uint64_t TickCycles = 0;
    for (const TraceOp &Op : Ops)
      if (Op.Kind == 3)
        TickCycles += Op.Addr;
    EXPECT_EQ(Tally.EventCycles + TickCycles + S.PrefetchIssueCycles,
              M.now());
  }
}

TEST(SimGolden, DetachRestoresFastPath) {
  // Attach, run, detach, run again: the detached half must keep counting
  // (through the inline fast path) while delivering no further events.
  MemoryHierarchy M(HierarchyConfig::ultraSparcE5000());
  TallyObserver Tally;
  M.attachObserver(&Tally);
  EXPECT_EQ(M.observer(), &Tally);
  std::vector<TraceOp> Ops = pointerChaseTrace();
  replay(M, Ops);
  uint64_t Delivered = Tally.Accesses;
  EXPECT_EQ(Delivered, M.stats().memoryReferences());

  M.attachObserver(nullptr);
  EXPECT_EQ(M.observer(), nullptr);
  replay(M, Ops);
  EXPECT_EQ(Tally.Accesses, Delivered);
  EXPECT_EQ(M.stats().memoryReferences(), 2 * Delivered);
}

TEST(SimStats, DeltaAndAccumulateRoundTrip) {
  // delta(Before, After) isolates one phase of a longer run; += must
  // reassemble the whole, and every snapshot/delta stays consistent.
  MemoryHierarchy M(HierarchyConfig::rsimTable1());
  std::vector<TraceOp> Ops = stridedTrace();
  std::vector<TraceOp> FirstHalf(Ops.begin(), Ops.begin() + Ops.size() / 2);
  std::vector<TraceOp> SecondHalf(Ops.begin() + Ops.size() / 2, Ops.end());

  replay(M, FirstHalf);
  SimStats Phase1 = M.stats();
  replay(M, SecondHalf);
  SimStats Whole = M.stats();
  SimStats Phase2 = SimStats::delta(Phase1, Whole);

  EXPECT_TRUE(Phase1.isConsistent());
  EXPECT_TRUE(Phase2.isConsistent());
  EXPECT_TRUE(Whole.isConsistent());
  EXPECT_GT(Phase2.memoryReferences(), 0u);

  SimStats Sum = Phase1;
  Sum += Phase2;
  EXPECT_EQ(Sum.Reads, Whole.Reads);
  EXPECT_EQ(Sum.Writes, Whole.Writes);
  EXPECT_EQ(Sum.L1Hits, Whole.L1Hits);
  EXPECT_EQ(Sum.L1Misses, Whole.L1Misses);
  EXPECT_EQ(Sum.L2Hits, Whole.L2Hits);
  EXPECT_EQ(Sum.L2Misses, Whole.L2Misses);
  EXPECT_EQ(Sum.TlbMisses, Whole.TlbMisses);
  EXPECT_EQ(Sum.Writebacks, Whole.Writebacks);
  EXPECT_EQ(Sum.BusyCycles, Whole.BusyCycles);
  EXPECT_EQ(Sum.L1StallCycles, Whole.L1StallCycles);
  EXPECT_EQ(Sum.L2StallCycles, Whole.L2StallCycles);
  EXPECT_EQ(Sum.TlbStallCycles, Whole.TlbStallCycles);
  EXPECT_EQ(Sum.totalCycles(), Whole.totalCycles());

  // Delta against a default-constructed baseline is the identity.
  SimStats FromZero = SimStats::delta(SimStats(), Whole);
  EXPECT_EQ(FromZero.memoryReferences(), Whole.memoryReferences());
  EXPECT_EQ(FromZero.totalCycles(), Whole.totalCycles());
}

TEST(SimGolden, ResetReproducesIdenticalStats) {
  MemoryHierarchy M(HierarchyConfig::ultraSparcE5000());
  std::vector<TraceOp> Ops = pointerChaseTrace();
  replay(M, Ops);
  GoldenStats First = collect(M);
  M.reset();
  replay(M, Ops);
  expectEqual(First, collect(M), "after reset");
}

TraceBuffer recordOps(const std::vector<TraceOp> &Ops) {
  TraceBuffer Buf;
  for (const TraceOp &Op : Ops) {
    switch (Op.Kind) {
    case 0:
      Buf.recordRead(Op.Addr, Op.Size);
      break;
    case 1:
      Buf.recordWrite(Op.Addr, Op.Size);
      break;
    case 2:
      Buf.recordPrefetch(Op.Addr);
      break;
    case 3:
      Buf.recordTick(Op.Addr);
      break;
    }
  }
  Buf.seal();
  return Buf;
}

TEST(SimGolden, RecordedReplayMatchesGolden) {
  // The trace engine against the seed-implementation numbers: encoding
  // each golden trace into a TraceBuffer and replaying it through the
  // software-pipelined decoder must reproduce every pinned statistic —
  // so record-once/replay-many can never drift from live simulation
  // without this test (and the seed goldens) noticing.
  for (const GoldenCase &Case : GoldenCases) {
    TraceBuffer Buf = recordOps(traceByName(Case.Trace));
    MemoryHierarchy M(presetByName(Case.Preset, Case.Trace));
    M.replay(Buf.view());
    expectEqual(Case.Expected, collect(M),
                std::string("replay/") + Case.Trace + "/" + Case.Preset);
  }
}

TEST(SimGolden, ShardedReplayMatchesGolden) {
  // The set-sharded parallel replay engine against the same seed
  // goldens: splitting each recording into per-set-shard sub-streams
  // and merging per-shard stats must land on every pinned number, with
  // the prefetch traces (cycle-coupled across sets) taking the
  // bit-identical serial fallback instead.
  SweepRunner Pool(4);
  for (const GoldenCase &Case : GoldenCases) {
    TraceBuffer Buf = recordOps(traceByName(Case.Trace));
    HierarchyConfig Config = presetByName(Case.Preset, Case.Trace);
    TraceShardIndex Index(Buf.view(), Config, {}, Pool.threads());
    MemoryHierarchy M(Config);
    obs::ReplayShardingEvent Event = M.replayParallel(Index, Pool);
    bool IsPrefetchTrace = std::string(Case.Trace) == "prefetch";
    EXPECT_EQ(Event.Parallel, !IsPrefetchTrace)
        << Case.Trace << "/" << Case.Preset << ": " << Event.Reason;
    if (Event.Parallel) {
      EXPECT_GT(Event.Shards, 1u);
      EXPECT_EQ(Event.Records, M.stats().memoryReferences());
    }
    expectEqual(Case.Expected, collect(M),
                std::string("sharded/") + Case.Trace + "/" + Case.Preset);
  }
}

TEST(SimGolden, BatchedReadTraceMatchesPerCallPath) {
  // Read-only trace driven through read() one call at a time vs the
  // batched readTrace() entry point must be indistinguishable.
  std::vector<TraceOp> Ops = pointerChaseTrace();
  for (const char *Preset : {"e5000", "rsim"}) {
    MemoryHierarchy PerCall(presetByName(Preset, "pointer-chase"));
    replay(PerCall, Ops);

    std::vector<MemAccess> Batch;
    Batch.reserve(Ops.size());
    for (const TraceOp &Op : Ops)
      Batch.push_back({Op.Addr, Op.Size, false});
    MemoryHierarchy Batched(presetByName(Preset, "pointer-chase"));
    Batched.readTrace(Batch);

    expectEqual(collect(PerCall), collect(Batched),
                std::string("batch/") + Preset);
  }
}

TEST(SimGolden, MixedSizeAccessesSpanBlocks) {
  // A 40-byte access spanning three 16-byte L1 blocks touches each block
  // once; the fast path must bail out to the range path for these.
  MemoryHierarchy M(HierarchyConfig::ultraSparcE5000());
  M.read(0x7f0000000008ULL, 40);
  EXPECT_EQ(M.stats().Reads, 3u);
  M.read(0x7f0000000008ULL, 40);
  EXPECT_EQ(M.stats().Reads, 6u);
  EXPECT_EQ(M.stats().L1Hits, 3u);
}

TEST(SweepRunner, GridMatchesSerialRun) {
  // A (preset x trace) grid of independent simulations run through the
  // thread pool must produce cell-for-cell identical statistics to a
  // serial in-order run.
  struct Cell {
    const char *Trace;
    const char *Preset;
  };
  std::vector<Cell> Grid;
  for (const char *Trace : {"pointer-chase", "strided", "prefetch"})
    for (const char *Preset : {"e5000", "rsim"})
      Grid.push_back({Trace, Preset});

  auto RunCell = [&](size_t I) {
    MemoryHierarchy M(presetByName(Grid[I].Preset, Grid[I].Trace));
    replay(M, traceByName(Grid[I].Trace));
    return collect(M);
  };

  std::vector<GoldenStats> Serial(Grid.size());
  SweepRunner SerialRunner(1);
  SerialRunner.run(Grid.size(),
                   [&](size_t I) { Serial[I] = RunCell(I); });

  std::vector<GoldenStats> Parallel(Grid.size());
  SweepRunner ParallelRunner(4);
  EXPECT_EQ(ParallelRunner.threads(), 4u);
  ParallelRunner.run(Grid.size(),
                     [&](size_t I) { Parallel[I] = RunCell(I); });

  for (size_t I = 0; I < Grid.size(); ++I)
    expectEqual(Serial[I], Parallel[I],
                std::string(Grid[I].Trace) + "/" + Grid[I].Preset);
}

TEST(SweepRunner, RunsEveryCellExactlyOnce) {
  constexpr size_t Cells = 1000;
  std::vector<std::atomic<uint32_t>> Counts(Cells);
  SweepRunner Runner(8);
  Runner.run(Cells, [&](size_t I) {
    Counts[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < Cells; ++I)
    EXPECT_EQ(Counts[I].load(), 1u) << "cell " << I;
}

TEST(SweepRunner, ChunkedRunsEveryCellExactlyOnce) {
  // Chunked self-scheduling must still be an exact cover of the grid,
  // including chunk sizes that do not divide the cell count.
  for (size_t Chunk : {1, 3, 7, 64, 1000, 5000}) {
    constexpr size_t Cells = 1000;
    std::vector<std::atomic<uint32_t>> Counts(Cells);
    SweepRunner Runner(8);
    Runner.run(
        Cells,
        [&](size_t I) { Counts[I].fetch_add(1, std::memory_order_relaxed); },
        Chunk);
    for (size_t I = 0; I < Cells; ++I)
      ASSERT_EQ(Counts[I].load(), 1u) << "chunk " << Chunk << " cell " << I;
  }
}

TEST(SweepRunner, InWorkerGuardsNestedParallelism) {
  // Cells observe inWorker() == true (on both the serial and the pooled
  // path); outside a run the flag is clear again.
  EXPECT_FALSE(SweepRunner::inWorker());
  for (unsigned Threads : {1u, 4u}) {
    SweepRunner Runner(Threads);
    std::atomic<uint32_t> InsideCount{0};
    Runner.run(16, [&](size_t) {
      if (SweepRunner::inWorker())
        InsideCount.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(InsideCount.load(), 16u) << Threads << " threads";
  }
  EXPECT_FALSE(SweepRunner::inWorker());
}

TEST(SweepRunner, PropagatesExceptions) {
  SweepRunner Runner(4);
  EXPECT_THROW(Runner.run(100,
                          [](size_t I) {
                            if (I == 42)
                              throw std::runtime_error("cell failed");
                          }),
               std::runtime_error);
}

TEST(SweepRunner, ZeroCellsIsANoop) {
  SweepRunner Runner(4);
  bool Ran = false;
  Runner.run(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(SweepRunner, RunPhasesCoversBothPhasesExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    constexpr size_t Cells1 = 100, Cells2 = 333;
    std::vector<std::atomic<uint32_t>> A(Cells1), B(Cells2);
    SweepRunner Runner(Threads);
    Runner.runPhases(
        Cells1,
        [&](size_t I) { A[I].fetch_add(1, std::memory_order_relaxed); },
        Cells2,
        [&](size_t I) { B[I].fetch_add(1, std::memory_order_relaxed); });
    for (size_t I = 0; I < Cells1; ++I)
      ASSERT_EQ(A[I].load(), 1u) << Threads << " threads, phase-1 cell " << I;
    for (size_t I = 0; I < Cells2; ++I)
      ASSERT_EQ(B[I].load(), 1u) << Threads << " threads, phase-2 cell " << I;
  }
}

TEST(SweepRunner, RunPhasesBarrierOrdersPhases) {
  // Every phase-2 cell must observe every phase-1 write: the internal
  // barrier makes runPhases equivalent to two back-to-back run() calls.
  for (unsigned Threads : {2u, 4u, 8u}) {
    constexpr size_t Cells = 256;
    std::vector<uint32_t> Values(Cells, 0); // Plain writes: the barrier
                                            // is the synchronization.
    std::atomic<uint32_t> Violations{0};
    SweepRunner Runner(Threads);
    Runner.runPhases(
        Cells, [&](size_t I) { Values[I] = uint32_t(I) + 1; }, Cells,
        [&](size_t I) {
          // Read a scattered other cell, not just our own.
          size_t Other = (I * 97 + 13) % Cells;
          if (Values[Other] != uint32_t(Other) + 1)
            Violations.fetch_add(1, std::memory_order_relaxed);
        });
    EXPECT_EQ(Violations.load(), 0u) << Threads << " threads";
  }
}

TEST(SweepRunner, RunPhasesUnevenPhaseSizes) {
  // More workers than phase-1 cells: idle workers must still arrive at
  // the barrier (no deadlock) and help with the larger phase 2.
  std::atomic<uint32_t> Phase1{0}, Phase2{0};
  SweepRunner Runner(8);
  Runner.runPhases(
      2, [&](size_t) { Phase1.fetch_add(1, std::memory_order_relaxed); },
      500, [&](size_t) { Phase2.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(Phase1.load(), 2u);
  EXPECT_EQ(Phase2.load(), 500u);

  // And an empty phase on either side.
  Phase1 = 0;
  Runner.runPhases(
      0, [&](size_t) { Phase1.fetch_add(1, std::memory_order_relaxed); },
      100, [&](size_t) { Phase2.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(Phase1.load(), 0u);
  EXPECT_EQ(Phase2.load(), 600u);
}

TEST(SweepRunner, RunPhasesPropagatesExceptions) {
  SweepRunner Runner(4);
  EXPECT_THROW(Runner.runPhases(
                   100,
                   [](size_t I) {
                     if (I == 42)
                       throw std::runtime_error("phase-1 cell failed");
                   },
                   100, [](size_t) {}),
               std::runtime_error);
  EXPECT_THROW(Runner.runPhases(100, [](size_t) {}, 100,
                                [](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error(
                                        "phase-2 cell failed");
                                }),
               std::runtime_error);
}
