//===- tests/model_test.cpp - Analytic framework tests -----------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//

#include "model/AnalyticModel.h"
#include "model/CTreeModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ccl;
using namespace ccl::model;

namespace {

CacheParams e5000L2() {
  // 1MB direct-mapped, 64B blocks -> 16384 sets; hot = half.
  CacheParams P;
  P.CacheSets = 16384;
  P.Associativity = 1;
  P.BlockBytes = 64;
  P.HotSets = 8192;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generic framework (Section 5.1 / 5.2)
//===----------------------------------------------------------------------===//

TEST(AnalyticModel, NaiveWorstCaseMissesEverything) {
  LocalityProfile Naive = LocalityProfile::naiveWorstCase(20.0);
  EXPECT_DOUBLE_EQ(missRate(Naive), 1.0);
}

TEST(AnalyticModel, SpatialLocalityDividesMisses) {
  // K = 2 with no reuse: every other element access misses.
  EXPECT_DOUBLE_EQ(missRate({10.0, 2.0, 0.0}), 0.5);
}

TEST(AnalyticModel, TemporalReuseSubtracts) {
  // Half the path is resident: miss rate halves.
  EXPECT_DOUBLE_EQ(missRate({10.0, 1.0, 5.0}), 0.5);
}

TEST(AnalyticModel, FullReuseMeansNoMisses) {
  EXPECT_DOUBLE_EQ(missRate({10.0, 1.0, 10.0}), 0.0);
}

TEST(AnalyticModel, ReuseClampedToD) {
  EXPECT_DOUBLE_EQ(missRate({10.0, 1.0, 50.0}), 0.0);
}

TEST(AnalyticModel, CombinedSpatialTemporal) {
  // m = (1 - R/D)/K = (1 - 4/16)/2 = 0.375.
  EXPECT_DOUBLE_EQ(missRate({16.0, 2.0, 4.0}), 0.375);
}

TEST(AnalyticModel, AccessTimeFormula) {
  MemoryTimings T{1.0, 6.0, 64.0};
  // t = (1 + 1*6 + 1*1*64) * D.
  EXPECT_DOUBLE_EQ(accessTime(T, 1.0, 1.0, 1.0), 71.0);
  EXPECT_DOUBLE_EQ(accessTime(T, 1.0, 1.0, 10.0), 710.0);
  // Perfect caching: only hit time remains.
  EXPECT_DOUBLE_EQ(accessTime(T, 0.0, 0.0, 10.0), 10.0);
}

TEST(AnalyticModel, SpeedupEqualLayoutsIsOne) {
  MemoryTimings T = MemoryTimings::ultraSparcE5000();
  EXPECT_DOUBLE_EQ(speedup(T, 0.5, 0.5, 0.5, 0.5), 1.0);
}

TEST(AnalyticModel, SpeedupWorstVsPerfect) {
  MemoryTimings T{1.0, 6.0, 64.0};
  // Naive misses everywhere (71 cycles/ref) vs pure L1 hits (1).
  EXPECT_DOUBLE_EQ(speedup(T, 1.0, 1.0, 0.0, 0.0), 71.0);
}

TEST(AnalyticModel, SpeedupMonotoneInCcMissRate) {
  MemoryTimings T = MemoryTimings::ultraSparcE5000();
  double Prev = 0;
  for (double M2 = 1.0; M2 >= 0.0; M2 -= 0.1) {
    double S = speedup(T, 1.0, 1.0, 1.0, M2);
    EXPECT_GT(S, Prev);
    Prev = S;
  }
}

TEST(AnalyticModel, AmortizedApproachesSteadyState) {
  LocalityProfile P{20.0, 2.0, 10.0};
  double Steady = missRate(P);
  double Short = amortizedMissRate(P, 10, 1000);
  double Long = amortizedMissRate(P, 1000000, 1000);
  EXPECT_GT(Short, Steady); // Cold start dominates short runs.
  EXPECT_NEAR(Long, Steady, 0.001);
}

TEST(AnalyticModel, AmortizedMonotoneInLength) {
  LocalityProfile P{20.0, 2.0, 12.0};
  double Prev = 1.0;
  for (uint64_t N : {10ULL, 100ULL, 1000ULL, 10000ULL}) {
    double M = amortizedMissRate(P, N, 500);
    EXPECT_LE(M, Prev + 1e-12);
    Prev = M;
  }
}

TEST(AnalyticModel, NoWarmupMeansSteadyImmediately) {
  LocalityProfile P{20.0, 2.0, 10.0};
  EXPECT_DOUBLE_EQ(amortizedMissRate(P, 5, 0), missRate(P));
}

TEST(AnalyticModel, TimingPresets) {
  MemoryTimings E = MemoryTimings::ultraSparcE5000();
  EXPECT_DOUBLE_EQ(E.L1MissPenalty, 6.0);
  EXPECT_DOUBLE_EQ(E.L2MissPenalty, 64.0);
  MemoryTimings R = MemoryTimings::rsimTable1();
  EXPECT_DOUBLE_EQ(R.L1MissPenalty, 9.0);
  EXPECT_DOUBLE_EQ(R.L2MissPenalty, 60.0);
}

//===----------------------------------------------------------------------===//
// C-tree instantiation (Section 5.3, Figure 9)
//===----------------------------------------------------------------------===//

TEST(CTreeModel, AccessFunctionIsTreeDepth) {
  CTreeModel M((1 << 21) - 1, e5000L2(), 2);
  EXPECT_NEAR(M.accessFunctionD(), 21.0, 1e-9);
}

TEST(CTreeModel, SpatialKMatchesFigure9) {
  // K = log2(k + 1): the expected number of per-block nodes used.
  EXPECT_NEAR(CTreeModel(1000, e5000L2(), 3).spatialK(), 2.0, 1e-12);
  EXPECT_NEAR(CTreeModel(1000, e5000L2(), 1).spatialK(), 1.0, 1e-12);
}

TEST(CTreeModel, ReuseMatchesFigure9) {
  // Rs = log2(p*k*a + 1) with p = 8192 hot sets, k = 2, a = 1.
  CTreeModel M((1 << 21) - 1, e5000L2(), 2);
  EXPECT_NEAR(M.reuseRs(), std::log2(8192.0 * 2 + 1), 1e-9);
}

TEST(CTreeModel, ReuseCappedByDepthForSmallTrees) {
  CTreeModel M(127, e5000L2(), 2); // Whole tree fits in the hot region.
  EXPECT_NEAR(M.reuseRs(), M.accessFunctionD(), 1e-9);
  EXPECT_NEAR(M.ccMissRate(), 0.0, 1e-12);
}

TEST(CTreeModel, MissRateMatchesClosedForm) {
  CTreeModel M((1 << 21) - 1, e5000L2(), 2);
  double D = 21.0;
  double K = std::log2(3.0);
  double Rs = std::log2(8192.0 * 2 + 1);
  EXPECT_NEAR(M.ccMissRate(), (1.0 - Rs / D) / K, 1e-9);
}

TEST(CTreeModel, PredictedSpeedupInPaperBallpark) {
  // The paper's Figure 10 shows ~4-6.5x predicted speedups for trees of
  // 2^18..2^22 nodes on the E5000.
  MemoryTimings T = MemoryTimings::ultraSparcE5000();
  for (unsigned Bits = 18; Bits <= 22; ++Bits) {
    CTreeModel M((1ULL << Bits) - 1, e5000L2(), 2);
    double S = M.predictedSpeedup(T);
    EXPECT_GT(S, 2.5) << "bits " << Bits;
    EXPECT_LT(S, 10.0) << "bits " << Bits;
  }
}

TEST(CTreeModel, SpeedupFallsAsTreeOutgrowsHotRegion) {
  // The colored hot region caches a fixed number of levels (Rs), so as
  // D = log2(n+1) grows the reused fraction Rs/D shrinks and the gain
  // over the naive layout declines — Figure 10's curve, which matches
  // Figure 5's ~4-5x at 2M keys.
  MemoryTimings T = MemoryTimings::ultraSparcE5000();
  double Prev = 1e9;
  for (unsigned Bits = 18; Bits <= 23; ++Bits) {
    double S =
        CTreeModel((1ULL << Bits) - 1, e5000L2(), 2).predictedSpeedup(T);
    EXPECT_LT(S, Prev);
    Prev = S;
  }
}

TEST(CTreeModel, BiggerClustersReduceMisses) {
  double M1 = CTreeModel((1 << 20) - 1, e5000L2(), 1).ccMissRate();
  double M2 = CTreeModel((1 << 20) - 1, e5000L2(), 2).ccMissRate();
  double M5 = CTreeModel((1 << 20) - 1, e5000L2(), 5).ccMissRate();
  EXPECT_GT(M1, M2);
  EXPECT_GT(M2, M5);
}

TEST(CTreeModel, MoreHotSetsReduceMisses) {
  CacheParams Half = e5000L2();
  CacheParams Quarter = e5000L2();
  Quarter.HotSets = Quarter.CacheSets / 4;
  double MHalf = CTreeModel((1 << 22) - 1, Half, 2).ccMissRate();
  double MQuarter = CTreeModel((1 << 22) - 1, Quarter, 2).ccMissRate();
  EXPECT_LT(MHalf, MQuarter);
}

TEST(CTreeModel, AssociativityMultipliesHotCapacity) {
  CacheParams DM = e5000L2();
  CacheParams FourWay = e5000L2();
  FourWay.Associativity = 4;
  double RsDm = CTreeModel((1 << 22) - 1, DM, 2).reuseRs();
  double Rs4 = CTreeModel((1 << 22) - 1, FourWay, 2).reuseRs();
  EXPECT_NEAR(Rs4 - RsDm, 2.0, 0.01); // log2(4) more resident levels.
}

TEST(CTreeModel, ProfileRoundTripsThroughFramework) {
  CTreeModel M((1 << 20) - 1, e5000L2(), 2);
  LocalityProfile P = M.ccProfile();
  EXPECT_DOUBLE_EQ(missRate(P), M.ccMissRate());
}
