//===- tests/metrics_test.cpp - Metrics registry and exporters ------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Covers the support-layer metrics registry (registration idempotence,
// per-thread aggregation under SweepRunner, histogram bucket edges,
// spans), the ccl-metrics-v1 round-trip through the obs exporters, the
// PerfCounters unavailable fallback, and the ccl-bench-v1 reader.
//
// The registry is process-global and names are never unregistered, so
// the overflow test (which exhausts the counter table) lives in its own
// suite declared last in this file — gtest runs suites in order of
// first declaration, so a same-suite test would be hoisted ahead of the
// later suites and poison their registrations.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchReader.h"
#include "obs/MetricsExport.h"
#include "support/BuildInfo.h"
#include "obs/PerfCounters.h"
#include "obs/TraceReader.h"
#include "support/Metrics.h"
#include "support/SweepRunner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace ccl;

namespace {

uint64_t counterValue(const metrics::Snapshot &S, const std::string &Name) {
  for (const metrics::CounterSnapshot &C : S.Counters)
    if (C.Name == Name)
      return C.Value;
  ADD_FAILURE() << "counter not in snapshot: " << Name;
  return 0;
}

const metrics::HistogramSnapshot *
findHistogram(const metrics::Snapshot &S, const std::string &Name) {
  for (const metrics::HistogramSnapshot &H : S.Histograms)
    if (H.Name == Name)
      return &H;
  ADD_FAILURE() << "histogram not in snapshot: " << Name;
  return nullptr;
}

} // namespace

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  metrics::Counter A = metrics::counter("test.idem");
  metrics::Counter B = metrics::counter("test.idem");
  EXPECT_EQ(A.Id, B.Id);
  metrics::Counter Other = metrics::counter("test.idem_other");
  EXPECT_NE(A.Id, Other.Id);
  // Counter and histogram namespaces are independent.
  metrics::Histogram H1 = metrics::histogram("test.idem");
  metrics::Histogram H2 = metrics::histogram("test.idem");
  EXPECT_EQ(H1.Id, H2.Id);
}

TEST(MetricsRegistry, AddAndSnapshot) {
  metrics::resetForTest();
  metrics::Counter C = metrics::counter("test.basic");
  metrics::add(C);
  metrics::add(C, 41);
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(counterValue(S, "test.basic"), 42u);
  EXPECT_FALSE(S.Overflowed);

  // Cached-cell increments (the CcHeap fast-path pattern) land on the
  // same shard slot as add().
  metrics::Cell *Cell = metrics::cell(C);
  metrics::bump(Cell, 8);
  EXPECT_EQ(counterValue(metrics::snapshot(), "test.basic"), 50u);
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  metrics::resetForTest();
  metrics::Histogram H = metrics::histogram("test.edges");
  // Bucket 0 holds value 0; bucket B >= 1 holds [2^(B-1), 2^B).
  metrics::record(H, 0);
  metrics::record(H, 1);
  metrics::record(H, 2);
  metrics::record(H, 3);
  metrics::record(H, 4);
  metrics::record(H, 1023);
  metrics::record(H, 1024);
  metrics::Snapshot S = metrics::snapshot();
  const metrics::HistogramSnapshot *Snap = findHistogram(S, "test.edges");
  ASSERT_NE(Snap, nullptr);
  EXPECT_EQ(Snap->Count, 7u);
  EXPECT_EQ(Snap->Sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(Snap->Buckets[0], 1u);  // 0
  EXPECT_EQ(Snap->Buckets[1], 1u);  // 1
  EXPECT_EQ(Snap->Buckets[2], 2u);  // 2, 3
  EXPECT_EQ(Snap->Buckets[3], 1u);  // 4
  EXPECT_EQ(Snap->Buckets[10], 1u); // 1023 = 2^10 - 1
  EXPECT_EQ(Snap->Buckets[11], 1u); // 1024 = 2^10
  EXPECT_EQ(Snap->usedBuckets(), 12u);
}

TEST(MetricsRegistry, AggregatesAcrossSweepWorkers) {
  metrics::resetForTest();
  metrics::Counter C = metrics::counter("test.sweep");
  metrics::Histogram H = metrics::histogram("test.sweep_cells");
  constexpr uint64_t Cells = 64;
  constexpr uint64_t PerCell = 1000;
  {
    SweepRunner Runner;
    Runner.run(Cells, [&](size_t) {
      for (uint64_t I = 0; I < PerCell; ++I)
        metrics::add(C);
      metrics::record(H, PerCell);
    });
  }
  // Worker threads have exited; their shards must still be counted.
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(counterValue(S, "test.sweep"), Cells * PerCell);
  const metrics::HistogramSnapshot *Snap =
      findHistogram(S, "test.sweep_cells");
  ASSERT_NE(Snap, nullptr);
  EXPECT_EQ(Snap->Count, Cells);
  EXPECT_EQ(Snap->Sum, Cells * PerCell);

  // A second pool recycles the retired shards; totals keep summing.
  {
    SweepRunner Runner;
    Runner.run(Cells, [&](size_t) { metrics::add(C, PerCell); });
  }
  EXPECT_EQ(counterValue(metrics::snapshot(), "test.sweep"),
            2 * Cells * PerCell);
}

TEST(MetricsRegistry, SpansRecord) {
  metrics::resetForTest();
  { metrics::ScopedSpan Span("test.phase"); }
  metrics::Snapshot S = metrics::snapshot();
  ASSERT_EQ(S.Spans.size(), 1u);
  EXPECT_EQ(S.Spans[0].Name, "test.phase");
}

TEST(MetricsExport, JsonlRoundTrip) {
  metrics::resetForTest();
  metrics::add(metrics::counter("test.rt_counter"), 123456789012ULL);
  metrics::record(metrics::histogram("test.rt_hist"), 7);
  metrics::record(metrics::histogram("test.rt_hist"), 900);
  { metrics::ScopedSpan Span("test.rt_span"); }
  metrics::Snapshot Before = metrics::snapshot();

  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  obs::writeMetricsJsonl(Before, F);
  std::rewind(F);
  obs::MetricsDoc Doc;
  long Parsed = obs::readMetricsFile(F, Doc);
  std::fclose(F);
  ASSERT_GT(Parsed, 0);
  EXPECT_FALSE(Doc.Binary.empty());
  // The meta line stamps the decode kernel this process dispatched to.
  EXPECT_EQ(Doc.Simd, simdKernel());

  uint64_t Value = counterValue(Doc.Data, "test.rt_counter");
  EXPECT_EQ(Value, 123456789012ULL);
  const metrics::HistogramSnapshot *H =
      findHistogram(Doc.Data, "test.rt_hist");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 2u);
  EXPECT_EQ(H->Sum, 907u);
  EXPECT_EQ(H->Buckets[3], 1u);  // 7
  EXPECT_EQ(H->Buckets[10], 1u); // 900
  bool FoundSpan = false;
  for (const metrics::SpanSnapshot &Span : Doc.Data.Spans)
    FoundSpan |= Span.Name == "test.rt_span";
  EXPECT_TRUE(FoundSpan);
}

TEST(MetricsExport, ConcatenatedDumpsAccumulate) {
  // cat a.jsonl b.jsonl | cclstat -: repeated lines for one name sum.
  obs::MetricsDoc Doc;
  EXPECT_TRUE(obs::parseMetricsLine(
      R"({"kind":"c","name":"x.total","v":10})", Doc));
  EXPECT_TRUE(obs::parseMetricsLine(
      R"({"kind":"c","name":"x.total","v":32})", Doc));
  EXPECT_TRUE(obs::parseMetricsLine(
      R"({"kind":"h","name":"x.h","count":1,"sum":4,"b":[[3,1]]})", Doc));
  EXPECT_TRUE(obs::parseMetricsLine(
      R"({"kind":"h","name":"x.h","count":2,"sum":6,"b":[[2,2]]})", Doc));
  EXPECT_EQ(counterValue(Doc.Data, "x.total"), 42u);
  const metrics::HistogramSnapshot *H = findHistogram(Doc.Data, "x.h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 3u);
  EXPECT_EQ(H->Sum, 10u);
  EXPECT_EQ(H->Buckets[3], 1u);
  EXPECT_EQ(H->Buckets[2], 2u);
  // Unknown kinds and corrupt lines are skipped, not fatal.
  EXPECT_FALSE(obs::parseMetricsLine(
      R"({"kind":"future-kind","name":"n"})", Doc));
  EXPECT_FALSE(obs::parseMetricsLine("not json at all", Doc));
}

TEST(MetricsExport, DumpProcessMetricsEmptyPathIsNoop) {
  EXPECT_TRUE(obs::dumpProcessMetrics(""));
}

TEST(PerfCountersTest, EnvDisableForcesUnavailable) {
  ::setenv("CCL_PERF_DISABLE", "1", 1);
  obs::PerfCounters Counters;
  ::unsetenv("CCL_PERF_DISABLE");
  EXPECT_FALSE(Counters.available());
  EXPECT_EQ(Counters.reason(), "disabled by CCL_PERF_DISABLE");

  // start/stop must be safe no-ops; the reading reports the reason.
  Counters.start();
  obs::PerfReading R = Counters.stop();
  EXPECT_FALSE(R.Available);
  EXPECT_EQ(R.Reason, "disabled by CCL_PERF_DISABLE");
  for (unsigned I = 0; I < obs::PerfNumEvents; ++I)
    EXPECT_FALSE(R.has(I));

  // PerfScope on an unavailable group degrades the same way.
  obs::PerfReading Scoped;
  { obs::PerfScope Scope(Counters, Scoped); }
  EXPECT_FALSE(Scoped.Available);
}

TEST(PerfCountersTest, ReadingDefaultsAreInert) {
  obs::PerfReading R;
  EXPECT_FALSE(R.Available);
  EXPECT_EQ(R.runningShare(), 0.0);
  for (unsigned I = 0; I < obs::PerfNumEvents; ++I) {
    EXPECT_FALSE(R.has(I));
    EXPECT_EQ(R.Raw[I], -1);
    EXPECT_EQ(R.Scaled[I], -1);
  }
}

TEST(BenchReaderTest, ParsesCclBenchDocument) {
  const std::string Text =
      R"({"schema":"ccl-bench-v1","bench":"fig5","full":true,)"
      R"("build_type":"release","results":[)"
      R"({"name":"random tree","section":"64bit","searches":100,)"
      R"("sim_l1_misses":2048,"hw_l1d_misses":1500,)"
      R"("nanos_per_search":95.5},)"
      R"json({"name":"(hw)","metric":"hw","hw_available":"no",)json"
      "\"hw_reason\":\"a \\\"quoted\\\" reason\"}]}";
  obs::BenchDoc Doc;
  ASSERT_TRUE(obs::parseBenchJson(Text, Doc));
  EXPECT_EQ(Doc.Bench, "fig5");
  EXPECT_EQ(Doc.BuildType, "release");
  EXPECT_TRUE(Doc.Full);
  ASSERT_EQ(Doc.Results.size(), 2u);

  const obs::BenchResultRecord &R = Doc.Results[0];
  EXPECT_EQ(R.str("name"), "random tree");
  EXPECT_EQ(R.str("section"), "64bit");
  bool Ok = false;
  EXPECT_EQ(R.num("searches", &Ok), 100.0);
  EXPECT_TRUE(Ok);
  EXPECT_EQ(R.num("sim_l1_misses"), 2048.0);
  EXPECT_EQ(R.num("hw_l1d_misses"), 1500.0);
  EXPECT_DOUBLE_EQ(R.num("nanos_per_search"), 95.5);
  EXPECT_FALSE(R.has("absent_key"));
  R.num("absent_key", &Ok);
  EXPECT_FALSE(Ok);

  EXPECT_EQ(Doc.Results[1].str("hw_reason"), "a \"quoted\" reason");
}

TEST(BenchReaderTest, RejectsWrongSchema) {
  obs::BenchDoc Doc;
  EXPECT_FALSE(obs::parseBenchJson(
      R"({"schema":"ccl-bench-v2","results":[]})", Doc));
  EXPECT_FALSE(obs::parseBenchJson("[]", Doc));
  EXPECT_FALSE(obs::parseBenchJson("", Doc));
}

TEST(TraceMeta, MetaLineCarriesProducerStamp) {
  // Satellite of the TraceSink fix: meta records the producing binary
  // and git describe; readers skip unknown fields, so pre-fix dumps
  // still parse (Producer stays empty).
  obs::TraceRecord Record;
  ASSERT_TRUE(obs::parseTraceLine(
      R"({"kind":"meta","schema":"ccl-trace-v1","sample":1,)"
      R"("binary":"fig5_tree_microbenchmark","git":"abc123-dirty"})",
      Record));
  ASSERT_EQ(Record.RecordKind, obs::TraceRecord::Kind::Meta);
  EXPECT_EQ(Record.Producer, "fig5_tree_microbenchmark");
  EXPECT_EQ(Record.ProducerGit, "abc123-dirty");

  obs::TraceRecord Legacy;
  ASSERT_TRUE(obs::parseTraceLine(
      R"({"kind":"meta","schema":"ccl-trace-v1","sample":1})", Legacy));
  EXPECT_TRUE(Legacy.Producer.empty());
  EXPECT_TRUE(Legacy.ProducerGit.empty());
}

TEST(TraceMeta, MetaLineCarriesCodecStamp) {
  // ccl-trace-v2 meta lines stamp the blocked-codec parameters and the
  // decode kernel the producer dispatched to. Readers auto-detect the
  // generation from these fields instead of gating on the schema
  // string, so v1 dumps (no stamp) keep parsing with the fields empty.
  obs::TraceRecord V2;
  ASSERT_TRUE(obs::parseTraceLine(
      R"({"kind":"meta","schema":"ccl-trace-v2","l1_block":32,)"
      R"("l1_sets":512,"l2_block":128,"l2_sets":2048,"hot_sets":7,)"
      R"("sample":1,"simd":"avx2","trace_block":64,)"
      R"("binary":"fig5_tree_microbenchmark","git":"abc123"})",
      V2));
  ASSERT_EQ(V2.RecordKind, obs::TraceRecord::Kind::Meta);
  EXPECT_EQ(V2.Schema, "ccl-trace-v2");
  EXPECT_EQ(V2.Simd, "avx2");
  EXPECT_EQ(V2.TraceBlock, 64u);
  EXPECT_EQ(V2.Config.L1BlockBytes, 32u); // v1 fields still read.
  EXPECT_EQ(V2.Config.L2Sets, 2048u);

  obs::TraceRecord V1;
  ASSERT_TRUE(obs::parseTraceLine(
      R"({"kind":"meta","schema":"ccl-trace-v1","sample":16})", V1));
  EXPECT_EQ(V1.Schema, "ccl-trace-v1");
  EXPECT_TRUE(V1.Simd.empty());
  EXPECT_EQ(V1.TraceBlock, 0u);

  obs::TraceRecord Bare; // pre-schema dumps: no stamp at all.
  ASSERT_TRUE(obs::parseTraceLine(R"({"kind":"meta","sample":1})", Bare));
  EXPECT_TRUE(Bare.Schema.empty());
  EXPECT_TRUE(Bare.Simd.empty());
  EXPECT_EQ(Bare.TraceBlock, 0u);
}

TEST(BenchReaderTest, CarriesSimdStamp) {
  // Post-stamp ccl-bench-v1 documents record the decode kernel in the
  // header; pre-stamp documents parse with Simd empty.
  obs::BenchDoc Stamped;
  ASSERT_TRUE(obs::parseBenchJson(
      R"({"schema":"ccl-bench-v1","bench":"sim","full":false,)"
      R"("build_type":"bench","simd":"ssse3","results":[]})",
      Stamped));
  EXPECT_EQ(Stamped.Simd, "ssse3");

  obs::BenchDoc Legacy;
  ASSERT_TRUE(obs::parseBenchJson(
      R"({"schema":"ccl-bench-v1","bench":"sim","results":[]})", Legacy));
  EXPECT_TRUE(Legacy.Simd.empty());
}

// Runs last (see file header): floods the counter table past
// MaxCounters, after which late registrations share the overflow slot
// and the snapshot carries the Overflowed flag. Names stay registered
// for the rest of the process, so nothing after this may register new
// counters and expect a private slot. Kept in a dedicated suite so
// gtest's suite-grouped execution order cannot hoist it ahead of the
// other suites in this file.
TEST(MetricsRegistryOverflow, FoldsIntoReservedSlot) {
  for (uint32_t I = 0; I < metrics::MaxCounters + 8; ++I)
    metrics::counter(("test.flood." + std::to_string(I)).c_str());
  metrics::Counter Late = metrics::counter("test.flood.late");
  EXPECT_EQ(Late.Id, metrics::MaxCounters - 1);
  metrics::add(Late); // Must not fault.
  EXPECT_TRUE(metrics::snapshot().Overflowed);
}
