//===- bench/ablation_ccmalloc_strategies.cpp - §3.2.1/§4.4 ablation ---------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Ablation over the three ccmalloc placement strategies (closest /
// new-block / first-fit) plus the §4.4 control experiments:
//
//  * memory overhead of new-block vs the others (paper: +12% treeadd,
//    +30% perimeter, +7% health, +3% mst);
//  * the null-hint control (every ccmalloc hint replaced by null), which
//    the paper found runs 2-6% *slower* than base malloc.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "olden/Health.h"
#include "olden/Mst.h"
#include "olden/Perimeter.h"
#include "olden/TreeAdd.h"
#include "support/SweepRunner.h"

#include <functional>
#include <iterator>

using namespace ccl;
using namespace ccl::olden;

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Ablation: ccmalloc strategies, memory overhead, and "
                     "null-hint control",
                     "Chilimbi/Hill/Larus PLDI'99, §3.2.1 and §4.4", Full);

  TreeAddConfig TreeAdd;
  TreeAdd.Levels = Full ? 18 : 16;
  TreeAdd.Iterations = 8;
  HealthConfig Health;
  Health.MaxLevel = Full ? 3 : 2;
  Health.Steps = Full ? 1000 : 500;
  MstConfig Mst;
  Mst.NumVertices = Full ? 512 : 256;
  Mst.Degree = 16;
  PerimeterConfig Perimeter;
  Perimeter.Levels = Full ? 12 : 10;

  struct Row {
    const char *Name;
    std::function<BenchResult(Variant, const sim::HierarchyConfig *)> Run;
  };
  std::vector<Row> Benchmarks = {
      {"treeadd", [&](Variant V, const sim::HierarchyConfig *S) {
         return runTreeAdd(TreeAdd, V, S);
       }},
      {"health", [&](Variant V, const sim::HierarchyConfig *S) {
         return runHealth(Health, V, S);
       }},
      {"mst", [&](Variant V, const sim::HierarchyConfig *S) {
         return runMst(Mst, V, S);
       }},
      {"perimeter", [&](Variant V, const sim::HierarchyConfig *S) {
         return runPerimeter(Perimeter, V, S);
       }},
  };

  sim::HierarchyConfig Config = sim::HierarchyConfig::rsimTable1();

  // Every (benchmark, variant) pair is an independent deterministic
  // simulation, so the whole grid runs as parallel sweep cells; the two
  // tables below are assembled from the completed grid in presentation
  // order. Base feeds both tables (runs are deterministic, so one run is
  // equivalent to the two a serial script would do).
  const Variant Variants[] = {Variant::Base, Variant::CcMallocFirstFit,
                              Variant::CcMallocClosest,
                              Variant::CcMallocNewBlock,
                              Variant::CcMallocNull};
  constexpr size_t NumVariants = std::size(Variants);
  std::vector<BenchResult> Grid(Benchmarks.size() * NumVariants);
  SweepRunner Runner;
  Runner.run(Grid.size(), [&](size_t Cell) {
    const Row &Bench = Benchmarks[Cell / NumVariants];
    Grid[Cell] = Bench.Run(Variants[Cell % NumVariants], &Config);
  });
  auto ResultFor = [&](size_t BenchIdx, Variant V) -> const BenchResult & {
    for (size_t I = 0; I < NumVariants; ++I)
      if (Variants[I] == V)
        return Grid[BenchIdx * NumVariants + I];
    std::abort();
  };

  TablePrinter Table({"benchmark", "strategy", "norm time", "memory",
                      "overhead vs closest"});
  for (size_t B = 0; B < Benchmarks.size(); ++B) {
    double BaseCycles =
        double(ResultFor(B, Variant::Base).Stats.totalCycles());
    const BenchResult &Closest = ResultFor(B, Variant::CcMallocClosest);
    for (auto [V, Name] :
         {std::pair{Variant::CcMallocFirstFit, "first-fit"},
          std::pair{Variant::CcMallocClosest, "closest"},
          std::pair{Variant::CcMallocNewBlock, "new-block"}}) {
      const BenchResult &R = ResultFor(B, V);
      double Overhead =
          100.0 * (double(R.HeapFootprintBytes) /
                       double(Closest.HeapFootprintBytes) -
                   1.0);
      Table.addRow({Benchmarks[B].Name, Name,
                    bench::pct(double(R.Stats.totalCycles()), BaseCycles),
                    TablePrinter::fmtInt(R.HeapFootprintBytes / 1024) +
                        " KB",
                    TablePrinter::fmt(Overhead, 1) + "%"});
    }
    Table.addSeparator();
  }
  Table.print();
  std::printf("(paper: new-block needs +12%% memory on treeadd, +30%% "
              "perimeter, +7%% health, +3%% mst)\n\n");

  std::printf("Null-hint control (§4.4): all ccmalloc hints replaced by "
              "null — expect slightly slower than base.\n");
  TablePrinter Control({"benchmark", "base cycles", "null-hint cycles",
                        "null vs base"});
  for (size_t B = 0; B < Benchmarks.size(); ++B) {
    const BenchResult &Base = ResultFor(B, Variant::Base);
    const BenchResult &Null = ResultFor(B, Variant::CcMallocNull);
    Control.addRow(
        {Benchmarks[B].Name, TablePrinter::fmtInt(Base.Stats.totalCycles()),
         TablePrinter::fmtInt(Null.Stats.totalCycles()),
         "+" + TablePrinter::fmt(
                   100.0 * (double(Null.Stats.totalCycles()) /
                                double(Base.Stats.totalCycles()) -
                            1.0),
                   1) +
             "%"});
  }
  Control.print();
  std::printf("(paper: control programs ran 2-6%% worse than base)\n");

  bench::BenchJson Json("ablation_ccmalloc_strategies", Full);
  const char *VariantNames[] = {"base", "first-fit", "closest", "new-block",
                                "null-hint"};
  for (size_t B = 0; B < Benchmarks.size(); ++B) {
    double BaseCycles =
        double(ResultFor(B, Variant::Base).Stats.totalCycles());
    for (size_t I = 0; I < NumVariants; ++I) {
      const BenchResult &R = Grid[B * NumVariants + I];
      Json.beginResult(Benchmarks[B].Name);
      Json.str("strategy", VariantNames[I]);
      Json.num("norm_time",
               100.0 * double(R.Stats.totalCycles()) / BaseCycles);
      Json.integer("total_cycles", R.Stats.totalCycles());
      Json.integer("heap_bytes", R.HeapFootprintBytes);
    }
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
