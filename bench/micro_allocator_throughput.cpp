//===- bench/micro_allocator_throughput.cpp - Allocator microbench -----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the allocator itself: §3.2 notes
// that "a heap allocator is invoked many more times than a data
// reorganizer, so it must use techniques that incur low overhead." This
// binary measures the native cost of the plain path, the three ccmalloc
// strategies, deallocation, free-list churn, and hint-pressure search.
// `--out <path>` emits google-benchmark JSON (the committed reference is
// BENCH_allocator_throughput.json). The companion reorganizer bench is
// micro_morph_throughput.
//
//===----------------------------------------------------------------------===//

#include "bench/MicroBenchMain.h"
#include "core/CcAllocator.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

using namespace ccl;

namespace {

void BM_PlainMalloc(benchmark::State &State) {
  CcAllocator Alloc;
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PlainMalloc);

template <heap::CcStrategy Strategy>
void BM_CcMallocNear(benchmark::State &State) {
  CcAllocator Alloc(CacheParams(), Strategy);
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  void *Near = Alloc.ccmalloc(24);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24, Near);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    Near = P;
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      Near = Alloc.ccmalloc(24);
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::Closest>)
    ->Name("BM_CcMallocNear/closest");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::NewBlock>)
    ->Name("BM_CcMallocNear/new-block");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::FirstFit>)
    ->Name("BM_CcMallocNear/first-fit");

// Near-allocation against a *fixed* hint whose page steadily fills:
// every call runs the strategy's block search over an increasingly
// occupied page — the worst case the bitmaps exist for.
template <heap::CcStrategy Strategy>
void BM_CcMallocNearPressure(benchmark::State &State) {
  CcAllocator Alloc(CacheParams(), Strategy);
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 12);
  void *Hint = Alloc.ccmalloc(24);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24, Hint);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    if (Ptrs.size() == (1 << 12)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CcMallocNearPressure<heap::CcStrategy::Closest>)
    ->Name("BM_CcMallocNearPressure/closest");
BENCHMARK(BM_CcMallocNearPressure<heap::CcStrategy::FirstFit>)
    ->Name("BM_CcMallocNearPressure/first-fit");

void BM_AllocFreePair(benchmark::State &State) {
  CcAllocator Alloc;
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(40);
    benchmark::DoNotOptimize(P);
    Alloc.ccfree(P);
  }
}
BENCHMARK(BM_AllocFreePair);

// Steady-state churn: a window of live chunks of mixed sizes with a
// deterministic replacement pattern. Exercises the free-list recycle
// path and block reclamation together (the size-class bins' hot loop).
void BM_AllocFreeChurn(benchmark::State &State) {
  constexpr size_t Window = 1 << 12;
  constexpr size_t Sizes[] = {16, 24, 40, 56};
  CcAllocator Alloc;
  std::vector<void *> Live(Window, nullptr);
  for (size_t I = 0; I < Window; ++I)
    Live[I] = Alloc.ccmalloc(Sizes[I % 4]);
  uint64_t Cursor = 0;
  for (auto _ : State) {
    // Multiplicative stride walks the window in a scattered order.
    size_t Slot = size_t((Cursor * 2654435761ULL) % Window);
    ++Cursor;
    Alloc.ccfree(Live[Slot]);
    Live[Slot] = Alloc.ccmalloc(Sizes[Slot % 4]);
    benchmark::DoNotOptimize(Live[Slot]);
  }
  for (void *P : Live)
    Alloc.ccfree(P);
}
BENCHMARK(BM_AllocFreeChurn);

void BM_SystemMallocBaseline(benchmark::State &State) {
  for (auto _ : State) {
    void *P = std::malloc(40);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_SystemMallocBaseline);

} // namespace

int main(int Argc, char **Argv) {
  return ccl::bench::runMicroBenchmark(Argc, Argv);
}
