//===- bench/micro_allocator_throughput.cpp - Allocator microbench -----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the allocator itself: §3.2 notes
// that "a heap allocator is invoked many more times than a data
// reorganizer, so it must use techniques that incur low overhead." This
// binary measures the native cost of the plain path, the three ccmalloc
// strategies, deallocation, free-list churn, hint-pressure search, and
// the sharded front-end's threaded build/churn modes (one worker per
// shard over a shared slab source).
// `--out <path>` emits google-benchmark JSON (the committed reference is
// BENCH_allocator_throughput.json). The companion reorganizer bench is
// micro_morph_throughput.
//
//===----------------------------------------------------------------------===//

#include "bench/MicroBenchMain.h"
#include "core/CcAllocator.h"
#include "support/SweepRunner.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

using namespace ccl;

namespace {

void BM_PlainMalloc(benchmark::State &State) {
  CcAllocator Alloc;
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PlainMalloc);

template <heap::CcStrategy Strategy>
void BM_CcMallocNear(benchmark::State &State) {
  CcAllocator Alloc(CacheParams(), Strategy);
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  void *Near = Alloc.ccmalloc(24);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24, Near);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    Near = P;
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      Near = Alloc.ccmalloc(24);
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::Closest>)
    ->Name("BM_CcMallocNear/closest");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::NewBlock>)
    ->Name("BM_CcMallocNear/new-block");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::FirstFit>)
    ->Name("BM_CcMallocNear/first-fit");

// Near-allocation against a *fixed* hint whose page steadily fills:
// every call runs the strategy's block search over an increasingly
// occupied page — the worst case the bitmaps exist for.
template <heap::CcStrategy Strategy>
void BM_CcMallocNearPressure(benchmark::State &State) {
  CcAllocator Alloc(CacheParams(), Strategy);
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 12);
  void *Hint = Alloc.ccmalloc(24);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24, Hint);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    if (Ptrs.size() == (1 << 12)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CcMallocNearPressure<heap::CcStrategy::Closest>)
    ->Name("BM_CcMallocNearPressure/closest");
BENCHMARK(BM_CcMallocNearPressure<heap::CcStrategy::FirstFit>)
    ->Name("BM_CcMallocNearPressure/first-fit");

void BM_AllocFreePair(benchmark::State &State) {
  CcAllocator Alloc;
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(40);
    benchmark::DoNotOptimize(P);
    Alloc.ccfree(P);
  }
}
BENCHMARK(BM_AllocFreePair);

// Steady-state churn: a window of live chunks of mixed sizes with a
// deterministic replacement pattern. Exercises the free-list recycle
// path and block reclamation together (the size-class bins' hot loop).
void BM_AllocFreeChurn(benchmark::State &State) {
  constexpr size_t Window = 1 << 12;
  constexpr size_t Sizes[] = {16, 24, 40, 56};
  CcAllocator Alloc;
  std::vector<void *> Live(Window, nullptr);
  for (size_t I = 0; I < Window; ++I)
    Live[I] = Alloc.ccmalloc(Sizes[I % 4]);
  uint64_t Cursor = 0;
  for (auto _ : State) {
    // Multiplicative stride walks the window in a scattered order.
    size_t Slot = size_t((Cursor * 2654435761ULL) % Window);
    ++Cursor;
    Alloc.ccfree(Live[Slot]);
    Live[Slot] = Alloc.ccmalloc(Sizes[Slot % 4]);
    benchmark::DoNotOptimize(Live[Slot]);
  }
  for (void *P : Live)
    Alloc.ccfree(P);
}
BENCHMARK(BM_AllocFreeChurn);

void BM_SystemMallocBaseline(benchmark::State &State) {
  for (auto _ : State) {
    void *P = std::malloc(40);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_SystemMallocBaseline);

//===----------------------------------------------------------------------===//
// Sharded front-end: multi-threaded structure construction and churn
//===----------------------------------------------------------------------===//

/// A TreeAdd-shaped node: payload plus two kid pointers, allocated with
/// the parent as the ccmalloc hint (Olden's bottom-up locality idiom).
struct BuildNode {
  uint64_t Payload[2];
  BuildNode *Left;
  BuildNode *Right;
};

BuildNode *buildSubtree(CcAllocator &Alloc, unsigned Depth,
                        const void *Near) {
  if (Depth == 0)
    return nullptr;
  auto *N = static_cast<BuildNode *>(Alloc.ccmalloc(sizeof(BuildNode), Near));
  N->Payload[0] = Depth;
  N->Left = buildSubtree(Alloc, Depth - 1, N);
  N->Right = buildSubtree(Alloc, Depth - 1, N);
  return N;
}

/// Threaded build mode: N workers each construct a TreeAdd-shaped
/// binary tree on their own shard of one sharded allocator — the
/// multi-threaded workload-construction path shardFor() exists for.
/// Arg(1) is the single-shard serial baseline; the allocation fast path
/// is lock-free in every configuration (the only mutex is SlabSource's,
/// once per 1 MB of growth). Real time: the workers do the allocating.
void BM_ShardedTreeBuild(benchmark::State &State) {
  const unsigned Shards = unsigned(State.range(0));
  const unsigned Depth = 14; // 16383 nodes per shard.
  const uint64_t NodesPerShard = (1u << Depth) - 1;
  SweepRunner Pool(Shards);
  for (auto _ : State) {
    CcAllocator Alloc(CacheParams(), heap::CcStrategy::NewBlock, Shards);
    Pool.run(Shards, [&](size_t S) {
      CcAllocator &Shard = Alloc.shardFor(unsigned(S));
      Shard.rebindMetricsToCurrentThread();
      benchmark::DoNotOptimize(buildSubtree(Shard, Depth, nullptr));
    });
    benchmark::DoNotOptimize(&Alloc);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Shards * NodesPerShard));
}
BENCHMARK(BM_ShardedTreeBuild)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Threaded steady-state churn, the BDD unique table's pre-aging
/// pattern (fig6): every shard keeps a window of live mixed-size chunks
/// and replaces scattered victims — free-list recycling and block
/// reclamation concurrently on all shards, zero shared state.
void BM_ShardedChurn(benchmark::State &State) {
  const unsigned Shards = unsigned(State.range(0));
  constexpr size_t Window = 1 << 12;
  constexpr size_t OpsPerShard = 1 << 14;
  constexpr size_t Sizes[] = {16, 24, 40, 56};
  SweepRunner Pool(Shards);
  CcAllocator Alloc(CacheParams(), heap::CcStrategy::NewBlock, Shards);
  std::vector<std::vector<void *>> Live(Shards);
  Pool.run(Shards, [&](size_t S) {
    CcAllocator &Shard = Alloc.shardFor(unsigned(S));
    Shard.rebindMetricsToCurrentThread();
    Live[S].resize(Window);
    for (size_t I = 0; I < Window; ++I)
      Live[S][I] = Shard.ccmalloc(Sizes[I % 4]);
  });
  for (auto _ : State) {
    Pool.run(Shards, [&](size_t S) {
      CcAllocator &Shard = Alloc.shardFor(unsigned(S));
      Shard.rebindMetricsToCurrentThread();
      uint64_t Cursor = 0;
      for (size_t Op = 0; Op < OpsPerShard; ++Op) {
        size_t Slot = size_t((Cursor * 2654435761ULL) % Window);
        ++Cursor;
        Shard.ccfree(Live[S][Slot]);
        Live[S][Slot] = Shard.ccmalloc(Sizes[Slot % 4]);
        benchmark::DoNotOptimize(Live[S][Slot]);
      }
    });
  }
  Pool.run(Shards, [&](size_t S) {
    CcAllocator &Shard = Alloc.shardFor(unsigned(S));
    Shard.rebindMetricsToCurrentThread();
    for (void *P : Live[S])
      Shard.ccfree(P);
  });
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Shards * OpsPerShard));
}
BENCHMARK(BM_ShardedChurn)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

} // namespace

int main(int Argc, char **Argv) {
  return ccl::bench::runMicroBenchmark(Argc, Argv);
}
