//===- bench/micro_allocator_throughput.cpp - Allocator microbench -----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the allocator itself: §3.2 notes
// that "a heap allocator is invoked many more times than a data
// reorganizer, so it must use techniques that incur low overhead." This
// binary measures the native cost of the plain path, the three ccmalloc
// strategies, deallocation, and a ccmorph pass per node.
//
//===----------------------------------------------------------------------===//

#include "core/CcAllocator.h"
#include "core/CcMorph.h"
#include "trees/BinaryTree.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace ccl;

namespace {

void BM_PlainMalloc(benchmark::State &State) {
  CcAllocator Alloc;
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PlainMalloc);

template <heap::CcStrategy Strategy>
void BM_CcMallocNear(benchmark::State &State) {
  CcAllocator Alloc(CacheParams(), Strategy);
  std::vector<void *> Ptrs;
  Ptrs.reserve(1 << 16);
  void *Near = Alloc.ccmalloc(24);
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(24, Near);
    benchmark::DoNotOptimize(P);
    Ptrs.push_back(P);
    Near = P;
    if (Ptrs.size() == (1 << 16)) {
      State.PauseTiming();
      for (void *Q : Ptrs)
        Alloc.ccfree(Q);
      Ptrs.clear();
      Near = Alloc.ccmalloc(24);
      State.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::Closest>)
    ->Name("BM_CcMallocNear/closest");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::NewBlock>)
    ->Name("BM_CcMallocNear/new-block");
BENCHMARK(BM_CcMallocNear<heap::CcStrategy::FirstFit>)
    ->Name("BM_CcMallocNear/first-fit");

void BM_AllocFreePair(benchmark::State &State) {
  CcAllocator Alloc;
  for (auto _ : State) {
    void *P = Alloc.ccmalloc(40);
    benchmark::DoNotOptimize(P);
    Alloc.ccfree(P);
  }
}
BENCHMARK(BM_AllocFreePair);

void BM_SystemMallocBaseline(benchmark::State &State) {
  for (auto _ : State) {
    void *P = std::malloc(40);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_SystemMallocBaseline);

/// Cost of one full ccmorph reorganization, reported per node.
void BM_CcMorphPerNode(benchmark::State &State) {
  const uint64_t N = uint64_t(State.range(0));
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CacheParams Params;
  for (auto _ : State) {
    CcMorph<trees::BstNode, trees::BstAdapter> Morph(Params);
    benchmark::DoNotOptimize(Morph.reorganize(Tree.root()));
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_CcMorphPerNode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

} // namespace

BENCHMARK_MAIN();
