//===- bench/MicroBenchMain.h - Shared google-benchmark driver -*- C++ -*-===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One main() for every google-benchmark microbench binary:
///
///  * `--out <path>` / `--out=<path>` / CCL_BENCH_OUT map onto
///    google-benchmark's JSON reporter (--benchmark_out +
///    --benchmark_out_format=json) — the same machine-readable channel
///    the figure benchmarks use;
///  * a `ccl_build_type` context field records how *this binary* was
///    compiled. google-benchmark's own library_build_type reflects the
///    (system) benchmark library, which on Debian reports "debug" even
///    for optimized binaries, so it cannot gate artifact acceptance;
///  * a startup warning on stderr when NDEBUG is unset, so debug numbers
///    never silently become reference artifacts.
///
/// Usage: `int main(int Argc, char **Argv) { return
/// ccl::bench::runMicroBenchmark(Argc, Argv); }` after the BENCHMARK()
/// registrations.
///
//===----------------------------------------------------------------------===//

#ifndef CCL_BENCH_MICROBENCHMAIN_H
#define CCL_BENCH_MICROBENCHMAIN_H

#include "bench/BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace ccl::bench {

inline int runMicroBenchmark(int Argc, char **Argv) {
  warnIfDebugBuild();
  std::string OutPath = benchOutPath(Argc, Argv);
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      ++I;
      continue;
    }
    if (std::strncmp(Argv[I], "--out=", 6) == 0)
      continue;
    Args.push_back(Argv[I]);
  }
  std::string OutFlag, FormatFlag;
  if (!OutPath.empty()) {
    OutFlag = "--benchmark_out=" + OutPath;
    FormatFlag = "--benchmark_out_format=json";
    Args.push_back(OutFlag.data());
    Args.push_back(FormatFlag.data());
  }
  benchmark::AddCustomContext("ccl_build_type", buildType());
  int N = int(Args.size());
  benchmark::Initialize(&N, Args.data());
  if (benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace ccl::bench

#endif // CCL_BENCH_MICROBENCHMAIN_H
