//===- bench/BenchCommon.h - Shared benchmark harness helpers --*- C++ -*-===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared pieces for the per-figure/per-table benchmark binaries:
/// a `--full` flag for paper-scale inputs (defaults are scaled down to
/// finish in seconds), percentage/normalization formatting, and the
/// machine-readable summary channel: `--out <path>` (or the
/// CCL_BENCH_OUT environment variable) selects a file to which the
/// benchmark writes a ccl-bench-v1 JSON document via BenchJson, so CI
/// can archive results without scraping tables.
///
//===----------------------------------------------------------------------===//

#ifndef CCL_BENCH_BENCHCOMMON_H
#define CCL_BENCH_BENCHCOMMON_H

#include "support/BuildInfo.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ccl::bench {

/// Build flavour of *this binary* ("release" when NDEBUG is defined,
/// "debug" otherwise). Authoritative for perf numbers — unlike
/// google-benchmark's library_build_type context field, which reports
/// how the (system) benchmark library was compiled, not the benchmark.
inline const char *buildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Warns on stderr when a benchmark binary was built without NDEBUG:
/// debug numbers must never be mistaken for the reference artifacts.
/// stderr so golden stdout tables stay byte-identical.
inline void warnIfDebugBuild() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "[bench] WARNING: built without NDEBUG (asserts on) - "
               "numbers are not comparable to release artifacts\n");
#endif
}

/// True if `--full` was passed: run paper-scale inputs.
inline bool fullScale(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--full") == 0)
      return true;
  return false;
}

/// True if \p Flag was passed verbatim.
inline bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

/// Value of `<Flag> <value>` or `<Flag>=<value>`; empty when absent.
inline std::string flagValue(int Argc, char **Argv, const char *Flag) {
  size_t Len = std::strlen(Flag);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Flag) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Flag, Len) == 0 && Argv[I][Len] == '=')
      return Argv[I] + Len + 1;
  }
  return {};
}

/// Path for the machine-readable summary: `--out <path>` / `--out=<path>`
/// beats the CCL_BENCH_OUT environment variable; empty means disabled.
inline std::string benchOutPath(int Argc, char **Argv) {
  std::string Path = flagValue(Argc, Argv, "--out");
  if (!Path.empty())
    return Path;
  if (const char *Env = std::getenv("CCL_BENCH_OUT"))
    return Env;
  return {};
}

/// Path for a ccl-metrics-v1 runtime-metrics dump: `--metrics <path>` /
/// `--metrics=<path>` beats the CCL_METRICS_OUT environment variable;
/// empty means disabled ("-" = stdout).
inline std::string metricsOutPath(int Argc, char **Argv) {
  std::string Path = flagValue(Argc, Argv, "--metrics");
  if (!Path.empty())
    return Path;
  if (const char *Env = std::getenv("CCL_METRICS_OUT"))
    return Env;
  return {};
}

/// Accumulates one benchmark run's results and writes them as a single
/// JSON document (schema ccl-bench-v1):
///
///   {"schema":"ccl-bench-v1","bench":"fig5","full":false,
///    "simd":"avx2","results":[{"name":"...","cycles_per_search":...}]}
///
/// "simd" records the trace-decode kernel the producing process
/// selected (readers skip unknown fields, so the schema stays v1).
///
/// Usage: beginResult() starts a result object; num()/integer()/str()
/// append fields to the most recent one.
class BenchJson {
public:
  BenchJson(std::string Bench, bool Full)
      : Bench(std::move(Bench)), Full(Full) {}

  void beginResult(const std::string &Name) {
    Results.emplace_back();
    str("name", Name);
  }

  void num(const std::string &Key, double Value) {
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    addField(Key, Buffer);
  }

  void integer(const std::string &Key, uint64_t Value) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%llu",
                  static_cast<unsigned long long>(Value));
    addField(Key, Buffer);
  }

  void str(const std::string &Key, const std::string &Value) {
    addField(Key, "\"" + escape(Value) + "\"");
  }

  /// Writes the document to \p Path ("-" = stdout). Returns false (with
  /// a note on stderr) if the file cannot be opened.
  bool write(const std::string &Path) const {
    std::FILE *Out =
        Path == "-" ? stdout : std::fopen(Path.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "ccl-bench: cannot open %s for writing\n",
                   Path.c_str());
      return false;
    }
    std::fprintf(Out, "{\"schema\":\"ccl-bench-v1\",\"bench\":\"%s\","
                      "\"full\":%s,\"build_type\":\"%s\",\"simd\":\"%s\","
                      "\"results\":[",
                 escape(Bench).c_str(), Full ? "true" : "false",
                 buildType(), ccl::simdKernel());
    for (size_t R = 0; R < Results.size(); ++R) {
      std::fprintf(Out, "%s{", R == 0 ? "" : ",");
      for (size_t F = 0; F < Results[R].size(); ++F)
        std::fprintf(Out, "%s%s", F == 0 ? "" : ",",
                     Results[R][F].c_str());
      std::fprintf(Out, "}");
    }
    std::fprintf(Out, "]}\n");
    if (Out != stdout)
      std::fclose(Out);
    else
      std::fflush(Out);
    return true;
  }

  /// write() only if a path was selected; reports where the summary went.
  void writeIfRequested(const std::string &Path) const {
    if (Path.empty())
      return;
    if (write(Path) && Path != "-")
      std::printf("\n[bench] wrote %s\n", Path.c_str());
  }

private:
  static std::string escape(const std::string &Raw) {
    std::string Out;
    Out.reserve(Raw.size());
    for (char C : Raw) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
        continue;
      }
      Out += C;
    }
    return Out;
  }

  void addField(const std::string &Key, const std::string &Rendered) {
    if (Results.empty())
      Results.emplace_back();
    Results.back().push_back("\"" + escape(Key) + "\":" + Rendered);
  }

  std::string Bench;
  bool Full;
  /// Each result is a list of pre-rendered "key":value fields.
  std::vector<std::vector<std::string>> Results;
};

inline void printHeader(const char *Title, const char *PaperRef,
                        bool Full) {
  warnIfDebugBuild();
  std::printf("\n=== %s ===\n", Title);
  std::printf("Reproduces: %s\n", PaperRef);
  std::printf("Scale: %s (pass --full for paper-scale inputs)\n\n",
              Full ? "FULL (paper-scale)" : "default (scaled down)");
}

/// "87.3%" style normalized-time cell (Base = 100).
inline std::string pct(double Value, double Base) {
  return TablePrinter::fmt(100.0 * Value / Base, 1) + "%";
}

/// "1.42x" style speedup cell.
inline std::string speedupStr(double Base, double Value) {
  return TablePrinter::fmt(Base / Value, 2) + "x";
}

} // namespace ccl::bench

#endif // CCL_BENCH_BENCHCOMMON_H
