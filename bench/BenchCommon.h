//===- bench/BenchCommon.h - Shared benchmark harness helpers --*- C++ -*-===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared pieces for the per-figure/per-table benchmark binaries:
/// a `--full` flag for paper-scale inputs (defaults are scaled down to
/// finish in seconds), and percentage/normalization formatting.
///
//===----------------------------------------------------------------------===//

#ifndef CCL_BENCH_BENCHCOMMON_H
#define CCL_BENCH_BENCHCOMMON_H

#include "support/TablePrinter.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace ccl::bench {

/// True if `--full` was passed: run paper-scale inputs.
inline bool fullScale(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--full") == 0)
      return true;
  return false;
}

inline void printHeader(const char *Title, const char *PaperRef,
                        bool Full) {
  std::printf("\n=== %s ===\n", Title);
  std::printf("Reproduces: %s\n", PaperRef);
  std::printf("Scale: %s (pass --full for paper-scale inputs)\n\n",
              Full ? "FULL (paper-scale)" : "default (scaled down)");
}

/// "87.3%" style normalized-time cell (Base = 100).
inline std::string pct(double Value, double Base) {
  return TablePrinter::fmt(100.0 * Value / Base, 1) + "%";
}

/// "1.42x" style speedup cell.
inline std::string speedupStr(double Base, double Value) {
  return TablePrinter::fmt(Base / Value, 2) + "x";
}

} // namespace ccl::bench

#endif // CCL_BENCH_BENCHCOMMON_H
