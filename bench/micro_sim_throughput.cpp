//===- bench/micro_sim_throughput.cpp - Simulator hot-path throughput --------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Google-benchmark microbenchmark for the MemoryHierarchy itself: simulated
// accesses per second for three canonical traces (pointer-chase, streaming,
// uniform-random) at both paper presets (E5000 and RSIM Table 1). Every
// figure and ablation in this repo is produced by pushing tens of millions
// of addresses through this simulator, so this number *is* the repo's
// wall-clock. Items/sec in the report = simulated accesses/sec.
//
//===----------------------------------------------------------------------===//

#include "bench/MicroBenchMain.h"
#include "sim/MemoryHierarchy.h"
#include "sim/TraceBuffer.h"
#include "sim/TraceShardIndex.h"
#include "support/SimdDispatch.h"
#include "support/SweepRunner.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ccl::sim;

namespace {

// Hermetic 64-bit LCG (MMIX constants); keeps traces identical across
// library and standard-library versions.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
};

enum class TraceKind { PointerChase, Streaming, Random };

// One trace entry: an 8-byte read at Addr (all three traces are
// read-only; writes take the identical hot path plus a dirty-bit or).
std::vector<uint64_t> makeTrace(TraceKind Kind, size_t Length) {
  std::vector<uint64_t> Addrs;
  Addrs.reserve(Length);
  Lcg Rng(0x51517ABCDEFULL);
  switch (Kind) {
  case TraceKind::PointerChase: {
    // Dependent-looking chase over 1<<15 64-byte nodes: mostly L1-resident
    // working set with misses into L2, like the paper's tree searches.
    const uint64_t Base = 0x7f1200000000ULL;
    uint64_t Node = 0;
    for (size_t I = 0; I < Length; ++I) {
      Addrs.push_back(Base + Node * 64);
      Node = Rng.next() % (1ULL << 15);
    }
    break;
  }
  case TraceKind::Streaming: {
    // Sequential 64-byte strides over a 16 MB region, wrapping around.
    const uint64_t Base = 0x7f3400000000ULL;
    for (size_t I = 0; I < Length; ++I)
      Addrs.push_back(Base + (I * 64) % (16ULL << 20));
    break;
  }
  case TraceKind::Random: {
    // Uniform random 8-byte reads over 64 MB: worst case for every level.
    const uint64_t Base = 0x7f5600000000ULL;
    for (size_t I = 0; I < Length; ++I)
      Addrs.push_back(Base + Rng.next() % (64ULL << 20));
    break;
  }
  }
  return Addrs;
}

HierarchyConfig presetFor(int64_t Arg) {
  return Arg == 0 ? HierarchyConfig::ultraSparcE5000()
                  : HierarchyConfig::rsimTable1();
}

void runTrace(benchmark::State &State, TraceKind Kind) {
  const std::vector<uint64_t> Trace = makeTrace(Kind, 1 << 20);
  MemoryHierarchy M(presetFor(State.range(0)));
  for (auto _ : State) {
    for (uint64_t Addr : Trace)
      M.read(Addr, 8);
    benchmark::DoNotOptimize(M.stats().L2Misses);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Trace.size()));
  State.SetLabel(State.range(0) == 0 ? "e5000" : "rsim");
}

void SimPointerChase(benchmark::State &State) {
  runTrace(State, TraceKind::PointerChase);
}

// Same pointer-chase trace through the batched readTrace() entry point.
void SimPointerChaseBatch(benchmark::State &State) {
  const std::vector<uint64_t> Addrs =
      makeTrace(TraceKind::PointerChase, 1 << 20);
  std::vector<MemAccess> Trace;
  Trace.reserve(Addrs.size());
  for (uint64_t Addr : Addrs)
    Trace.push_back({Addr, 8, false});
  MemoryHierarchy M(presetFor(State.range(0)));
  for (auto _ : State) {
    M.readTrace(Trace);
    benchmark::DoNotOptimize(M.stats().L2Misses);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Trace.size()));
  State.SetLabel(State.range(0) == 0 ? "e5000" : "rsim");
}

// Record-once/replay-many path: the pointer chase is encoded into a
// TraceBuffer once, then every iteration replays the sealed recording
// through the software-pipelined MemoryHierarchy::replay() decoder.
// Items/sec here vs SimPointerChaseBatch is the per-replay cost of the
// trace engine (decode + prefetch vs iterating raw MemAccess records).
void SimPointerChaseReplay(benchmark::State &State) {
  const std::vector<uint64_t> Addrs =
      makeTrace(TraceKind::PointerChase, 1 << 20);
  TraceBuffer Buf;
  for (uint64_t Addr : Addrs)
    Buf.recordRead(Addr, 8);
  Buf.seal();
  MemoryHierarchy M(presetFor(State.range(0)));
  for (auto _ : State) {
    M.replay(Buf.view());
    benchmark::DoNotOptimize(M.stats().L2Misses);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Buf.records()));
  State.SetLabel(State.range(0) == 0 ? "e5000" : "rsim");
}

// Pure decode throughput: stream the recorded pointer chase through a
// TraceCursor and discard the records — no cache probes — so codec wins
// are measured separately from probe wins. Arg selects the wire format:
// 1 = v1 (per-record varints, scalar by construction), 2 = v2 (blocked
// control/data lanes through the selected shuffle kernel; CCL_SIMD=off
// measures the scalar fallback). The label stamps encoding + kernel.
void SimTraceDecodeOnly(benchmark::State &State) {
  const bool V1 = State.range(0) == 1;
  const std::vector<uint64_t> Addrs =
      makeTrace(TraceKind::PointerChase, 1 << 20);
  TraceBuffer Buf(V1 ? TraceEncoding::V1 : TraceEncoding::V2);
  for (uint64_t Addr : Addrs)
    Buf.recordRead(Addr, 8);
  Buf.seal();
  uint64_t Sink = 0;
  for (auto _ : State) {
    TraceCursor Cursor(Buf.view());
    TraceRecord Batch[TraceBlockCap];
    size_t Got;
    while ((Got = Cursor.nextBatch(Batch, TraceBlockCap)) != 0)
      for (size_t I = 0; I < Got; ++I)
        Sink += Batch[I].Addr;
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Buf.records()));
  char Label[64];
  std::snprintf(Label, sizeof(Label), "%s %s", V1 ? "v1" : "v2",
                V1 ? "scalar" : ccl::simdLevelName());
  State.SetLabel(Label);
}

// Sharded replay scaling: the pointer-chase recording is indexed once
// (per-shard sub-streams keyed by the nested L1/L2 set-index window),
// then every iteration replays it through replayParallel on a pool of
// Arg(N) workers. Arg(1) is the serial-fallback baseline — the index
// declines to shard for a single worker — so items/sec at Arg(N) over
// Arg(1) is the replay engine's parallel speedup, and the label reports
// the shard geometry (shards, groups ≈ 4 per worker) plus the measured
// load imbalance. On a single-core host every arg takes the fallback
// and the column degenerates to the serial replay cost (no regression).
void SimReplayShardedScaling(benchmark::State &State) {
  const unsigned Workers = unsigned(State.range(0));
  const std::vector<uint64_t> Addrs =
      makeTrace(TraceKind::PointerChase, 1 << 20);
  TraceBuffer Buf;
  for (uint64_t Addr : Addrs)
    Buf.recordRead(Addr, 8);
  Buf.seal();
  const HierarchyConfig Config = HierarchyConfig::ultraSparcE5000();
  const ccl::SweepRunner Pool(Workers);
  const TraceShardIndex Index(Buf.view(), Config, {}, Workers);
  ccl::obs::ReplayShardingEvent Last;
  for (auto _ : State) {
    MemoryHierarchy M(Config);
    Last = M.replayParallel(Index, Pool);
    benchmark::DoNotOptimize(M.stats().L2Misses);
  }
  State.SetItemsProcessed(
      int64_t(State.iterations()) *
      int64_t(Index.blockAccessesBetween(0, Index.numCuts() - 1)));
  char Label[96];
  std::snprintf(Label, sizeof(Label),
                "e5000 workers=%u shards=%u groups=%u %s imb=%.2f",
                Workers, Last.Shards, Last.Groups,
                Last.Parallel ? "parallel" : "serial", Last.imbalance());
  State.SetLabel(Label);
}

void SimStreaming(benchmark::State &State) {
  runTrace(State, TraceKind::Streaming);
}

void SimRandom(benchmark::State &State) {
  runTrace(State, TraceKind::Random);
}

// The observed path: same pointer chase with a minimal counting observer
// attached. The gap to SimPointerChase is the full price of telemetry
// (slow-path routing + event construction + one virtual call per block);
// the unobserved runs above are the witness that detached costs nothing.
struct CountingObserver final : ccl::obs::SimObserver {
  uint64_t Accesses = 0;
  void onAccess(const ccl::obs::AccessEvent &Event) override {
    Accesses += Event.Size != 0;
  }
};

void SimPointerChaseObserved(benchmark::State &State) {
  const std::vector<uint64_t> Trace =
      makeTrace(TraceKind::PointerChase, 1 << 20);
  MemoryHierarchy M(presetFor(State.range(0)));
  CountingObserver Obs;
  M.attachObserver(&Obs);
  for (auto _ : State) {
    for (uint64_t Addr : Trace)
      M.read(Addr, 8);
    benchmark::DoNotOptimize(Obs.Accesses);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Trace.size()));
  State.SetLabel(State.range(0) == 0 ? "e5000" : "rsim");
}

BENCHMARK(SimPointerChase)->Arg(0)->Arg(1);
BENCHMARK(SimPointerChaseBatch)->Arg(0)->Arg(1);
BENCHMARK(SimPointerChaseReplay)->Arg(0)->Arg(1);
BENCHMARK(SimTraceDecodeOnly)->Arg(1)->Arg(2);
// UseRealTime: the replay work runs on pool threads, so main-thread CPU
// time (the default basis for items/sec) would overstate throughput.
BENCHMARK(SimReplayShardedScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK(SimStreaming)->Arg(0)->Arg(1);
BENCHMARK(SimRandom)->Arg(0)->Arg(1);
BENCHMARK(SimPointerChaseObserved)->Arg(0)->Arg(1);

} // namespace

// Shared driver: `--out` -> google-benchmark JSON, ccl_build_type
// context, debug-build warning.
int main(int Argc, char **Argv) {
  return ccl::bench::runMicroBenchmark(Argc, Argv);
}
