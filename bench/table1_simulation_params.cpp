//===- bench/table1_simulation_params.cpp - Paper Table 1 --------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Table 1: "Simulation Parameters" — prints the live configuration of
// the memory-hierarchy simulator used for the Figure 7 experiments and
// self-checks its latencies by probing. (Our simulator is trace-driven,
// not an out-of-order core, so the issue-width / functional-unit rows of
// the original table have no equivalent; the memory-system rows — the
// ones the paper's results hinge on — are reproduced exactly.)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "sim/MemoryHierarchy.h"

using namespace ccl;
using namespace ccl::sim;

namespace {

void printConfig(const char *Name, const HierarchyConfig &Config) {
  std::printf("%s:\n", Name);
  TablePrinter Table({"parameter", "value"});
  auto KB = [](uint64_t Bytes) {
    return TablePrinter::fmtInt(Bytes / 1024) + " KB";
  };
  Table.addRow({"L1 data cache",
                KB(Config.L1.CapacityBytes) + ", " +
                    TablePrinter::fmtInt(Config.L1.Associativity) +
                    "-way, " + TablePrinter::fmtInt(Config.L1.BlockBytes) +
                    "B blocks"});
  Table.addRow({"L2 cache",
                KB(Config.L2.CapacityBytes) + ", " +
                    TablePrinter::fmtInt(Config.L2.Associativity) +
                    "-way, " + TablePrinter::fmtInt(Config.L2.BlockBytes) +
                    "B blocks"});
  Table.addRow({"L1 hit",
                TablePrinter::fmtInt(Config.L1.HitLatency) + " cycle"});
  Table.addRow({"L1 miss (L2 hit)",
                TablePrinter::fmtInt(Config.L2.HitLatency) + " cycles"});
  Table.addRow({"L2 miss",
                TablePrinter::fmtInt(Config.MemoryLatency) + " cycles"});
  Table.addRow({"TLB", TablePrinter::fmtInt(Config.Tlb.Entries) +
                           " entries, " +
                           KB(Config.Tlb.PageBytes) + " pages, " +
                           TablePrinter::fmtInt(Config.Tlb.MissLatency) +
                           "-cycle miss"});
  Table.print();
}

/// Observed latencies from probing a live hierarchy.
struct ProbeResult {
  uint64_t L1Hit = 0;
  uint64_t L2Hit = 0;
  uint64_t Memory = 0;
};

/// Probes the hierarchy to confirm the configured latencies are what a
/// workload actually observes.
ProbeResult selfCheck(const HierarchyConfig &ConfigIn) {
  HierarchyConfig Config = ConfigIn;
  Config.Tlb.Enabled = false;
  MemoryHierarchy M(Config);

  uint64_t T0 = M.now();
  M.read(0x100000, 4); // Cold: full miss.
  uint64_t ColdCost = M.now() - T0;
  T0 = M.now();
  M.read(0x100000, 4); // L1 hit.
  uint64_t HitCost = M.now() - T0;

  // Evict from L1 only: touch enough conflicting L1 sets.
  uint64_t Stride = Config.L1.CapacityBytes;
  for (uint64_t I = 1; I <= Config.L1.Associativity; ++I)
    M.read(0x100000 + I * Stride, 4);
  T0 = M.now();
  M.read(0x100000, 4);
  uint64_t L2HitCost = M.now() - T0;

  std::printf("self-check: L1 hit = %llu cy, L2 hit = %llu cy, "
              "memory = %llu cy (expected %u / %u / %u)\n\n",
              (unsigned long long)HitCost, (unsigned long long)L2HitCost,
              (unsigned long long)ColdCost, Config.L1.HitLatency,
              Config.L1.HitLatency + Config.L2.HitLatency,
              Config.L1.HitLatency + Config.L2.HitLatency +
                  Config.MemoryLatency);
  return {HitCost, L2HitCost, ColdCost};
}

/// One ccl-bench-v1 result per preset: the configured parameters plus
/// the self-check's observed latencies, so cclstat and bench_compare
/// can diff simulator configuration drift across commits.
void emitConfig(bench::BenchJson &Json, const char *Name,
                const HierarchyConfig &Config, const ProbeResult &Probe) {
  Json.beginResult(Name);
  Json.integer("l1_capacity_bytes", Config.L1.CapacityBytes);
  Json.integer("l1_associativity", Config.L1.Associativity);
  Json.integer("l1_block_bytes", Config.L1.BlockBytes);
  Json.integer("l2_capacity_bytes", Config.L2.CapacityBytes);
  Json.integer("l2_associativity", Config.L2.Associativity);
  Json.integer("l2_block_bytes", Config.L2.BlockBytes);
  Json.integer("l1_hit_cycles", Config.L1.HitLatency);
  Json.integer("l2_hit_cycles", Config.L2.HitLatency);
  Json.integer("memory_cycles", Config.MemoryLatency);
  Json.integer("tlb_entries", Config.Tlb.Entries);
  Json.integer("tlb_page_bytes", Config.Tlb.PageBytes);
  Json.integer("tlb_miss_cycles", Config.Tlb.MissLatency);
  Json.integer("probed_l1_hit_cycles", Probe.L1Hit);
  Json.integer("probed_l2_hit_cycles", Probe.L2Hit);
  Json.integer("probed_memory_cycles", Probe.Memory);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Table 1: simulation parameters",
                     "Chilimbi/Hill/Larus PLDI'99, Table 1 + Section 4.1",
                     Full);

  printConfig("RSIM preset (Table 1; used for Figure 7)",
              HierarchyConfig::rsimTable1());
  ProbeResult Rsim = selfCheck(HierarchyConfig::rsimTable1());

  printConfig("Sun Ultraserver E5000 preset (Section 4.1; used for "
              "Figures 5, 6, 10)",
              HierarchyConfig::ultraSparcE5000());
  ProbeResult Ultra = selfCheck(HierarchyConfig::ultraSparcE5000());

  // Machine-readable summary (--out <path> / CCL_BENCH_OUT).
  bench::BenchJson Json("table1", Full);
  emitConfig(Json, "rsim_table1", HierarchyConfig::rsimTable1(), Rsim);
  emitConfig(Json, "ultrasparc_e5000", HierarchyConfig::ultraSparcE5000(),
             Ultra);
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
