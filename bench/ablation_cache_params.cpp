//===- bench/ablation_cache_params.cpp - Cache-geometry ablation -------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Sweep of cache geometry (capacity, associativity) for the C-tree vs
// random-layout speedup, with the Section 5 model prediction alongside.
// Exercises the model's claim that the framework applies across cache
// configurations <c, b, a>: larger caches and higher associativity grow
// the conflict-free hot region (Rs = log2(p*k*a + 1)), shrinking the
// remaining advantage headroom as more of the tree becomes resident.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/CTreeModel.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"

#include <cinttypes>

using namespace ccl;
using namespace ccl::trees;

namespace {

template <typename TreeT>
uint64_t steadyCycles(const TreeT &Tree, uint64_t NumKeys, unsigned Warmup,
                      unsigned Window, const sim::HierarchyConfig &Config) {
  sim::MemoryHierarchy M(Config);
  sim::SimAccess A(M);
  Xoshiro256 Rng(0xCAC4EULL);
  for (unsigned I = 0; I < Warmup; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  uint64_t Start = M.now();
  for (unsigned I = 0; I < Window; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Ablation: cache geometry sweep (capacity, "
                     "associativity)",
                     "Chilimbi/Hill/Larus PLDI'99, Section 5 model across "
                     "<c, b, a>",
                     Full);

  const uint64_t NumKeys = Full ? (1ULL << 21) - 1 : (1ULL << 19) - 1;
  unsigned Warmup = 4000;
  unsigned Window = Full ? 25000 : 10000;
  model::MemoryTimings Timings = model::MemoryTimings::ultraSparcE5000();

  auto Random = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
  auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);

  struct Geometry {
    uint64_t CapacityKB;
    uint32_t Assoc;
  };
  std::vector<Geometry> Geometries = {
      {256, 1}, {512, 1}, {1024, 1}, {1024, 2}, {1024, 4}, {2048, 1}};

  std::printf("tree: %" PRIu64 " keys (%.1f MB)\n\n", NumKeys,
              NumKeys * sizeof(BstNode) / 1048576.0);

  TablePrinter Table({"L2", "assoc", "measured speedup",
                      "predicted speedup", "model Rs", "cc miss rate"});
  // Each geometry is an independent simulation cell: it builds its own
  // C-tree and drives its own hierarchies, so the grid runs in parallel
  // with results identical to a serial sweep (rows are assembled by cell
  // index afterwards).
  std::vector<std::vector<std::string>> Rows(Geometries.size());
  // Raw per-cell numbers for the machine-readable summary (--out).
  struct CellOut {
    double MeasuredSpeedup = 0, PredictedSpeedup = 0, Rs = 0, MissRate = 0;
  };
  std::vector<CellOut> Out(Geometries.size());
  SweepRunner Runner;
  Runner.run(Geometries.size(), [&](size_t Cell) {
    const Geometry &G = Geometries[Cell];
    sim::HierarchyConfig Config;
    Config.L1 = {16 * 1024, 16, 1, 1};
    Config.L2 = {G.CapacityKB * 1024, 64, G.Assoc, 6};
    Config.MemoryLatency = 64;
    Config.Tlb = {true, 64, 8192, 40};
    CacheParams Params = CacheParams::fromHierarchy(Config);

    CTree Tree(Params);
    Tree.adopt(Source.root());
    uint64_t RandomCycles =
        steadyCycles(Random, NumKeys, Warmup, Window, Config);
    uint64_t CtreeCycles =
        steadyCycles(Tree, NumKeys, Warmup, Window, Config);

    uint64_t K = std::max<uint64_t>(1, Params.BlockBytes / sizeof(BstNode));
    model::CTreeModel Model(NumKeys, Params, K);
    Rows[Cell] = {TablePrinter::fmtInt(G.CapacityKB) + " KB",
                  TablePrinter::fmtInt(G.Assoc),
                  bench::speedupStr(double(RandomCycles),
                                    double(CtreeCycles)),
                  TablePrinter::fmt(Model.predictedSpeedup(Timings), 2) +
                      "x",
                  TablePrinter::fmt(Model.reuseRs(), 2),
                  TablePrinter::fmt(Model.ccMissRate(), 3)};
    Out[Cell] = {double(RandomCycles) / double(CtreeCycles),
                 Model.predictedSpeedup(Timings), Model.reuseRs(),
                 Model.ccMissRate()};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  Table.print();
  std::printf("\nShape to check: Rs grows with capacity and log2(assoc); "
              "the naive layout also improves with\nbigger caches, so the "
              "measured gap can close faster than the worst-case-naive "
              "prediction.\n");

  bench::BenchJson Json("ablation_cache_params", Full);
  for (size_t I = 0; I < Geometries.size(); ++I) {
    Json.beginResult(TablePrinter::fmtInt(Geometries[I].CapacityKB) +
                     "KB/a" + TablePrinter::fmtInt(Geometries[I].Assoc));
    Json.integer("l2_capacity_kb", Geometries[I].CapacityKB);
    Json.integer("l2_assoc", Geometries[I].Assoc);
    Json.num("measured_speedup", Out[I].MeasuredSpeedup);
    Json.num("predicted_speedup", Out[I].PredictedSpeedup);
    Json.num("model_rs", Out[I].Rs);
    Json.num("cc_miss_rate", Out[I].MissRate);
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
