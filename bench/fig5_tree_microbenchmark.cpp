//===- bench/fig5_tree_microbenchmark.cpp - Paper Figure 5 -------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Figure 5: "Binary tree microbenchmark" — average search time vs number
// of repeated random searches for four tree organizations: randomly
// clustered binary tree, depth-first clustered binary tree, in-core
// B-tree (colored), and transparent C-tree. The paper finds C-trees and
// B-trees beat random layout by ~4-5x, depth-first by ~2.5-3x, and
// C-trees beat B-trees by ~1.5x.
//
// Average time is measured from a cold cache, so the curves fall as the
// colored hot region warms up — the amortized miss-rate behaviour of
// Section 5.1.
//
// Measurement structure (record once, replay many): every sweep point's
// search stream is seeded identically, so the 10-search stream is a
// prefix of the 100-search stream and so on up to the largest count.
// Each tree organization is therefore traversed natively exactly once —
// recording its largest-count access stream into a sim::TraceBuffer —
// and every (organization x count) cell replays a prefix of that
// recording through a fresh, cold MemoryHierarchy on a SweepRunner
// worker. Replay preserves recorded order, so the canonical first-touch
// address remap and all statistics are bit-identical to the serial
// re-executing implementation this replaced.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "obs/Attribution.h"
#include "obs/Export.h"
#include "obs/FieldProfile.h"
#include "obs/MetricsExport.h"
#include "obs/PerfCounters.h"
#include "obs/Region.h"
#include "sim/AccessPolicy.h"
#include "support/Metrics.h"
#include "trees/CompactTree.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "support/Timer.h"
#include "trees/BTree.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"

#include <cinttypes>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

using namespace ccl;
using namespace ccl::trees;

namespace {

struct SearchSeries {
  std::string Name;
  std::vector<double> CyclesPerSearch;
  std::vector<double> NanosPerSearch;
  /// Simulated miss totals for each count's cold-start replay, so the
  /// machine-readable summary can pair them with hardware counts.
  std::vector<uint64_t> SimL1Misses;
  std::vector<uint64_t> SimL2Misses;
  std::vector<uint64_t> SimTlbMisses;
  /// Hardware counters around each timed native window (--hw only;
  /// empty otherwise). Readings carry Available=false on denied hosts.
  std::vector<obs::PerfReading> Hw;
  /// How the replay sweep sharded (replayParallel telemetry).
  obs::ReplayShardingSummary Sharding;
};

/// Untimed native searches run per organization before its timed
/// window, so the first timed cell is not charged for paging the tree
/// into the host's cold caches. Fixed-size (not proportional) so the
/// warm-up cost stays bounded at --full scale.
constexpr uint64_t NativeWarmupSearches = 2000;

/// One tree organization to sweep: a name plus the search entry point
/// instantiated for the recording and native policies.
struct SeriesDef {
  std::string Name;
  std::function<bool(uint32_t, sim::RecordAccess &)> RecordSearch;
  std::function<bool(uint32_t, sim::NativeAccess &)> NativeSearch;
};

/// Wraps one generic search lambda (templated over the access policy)
/// as a SeriesDef. The indirection costs one call per *search*, not per
/// simulated access.
template <typename SearchFn>
SeriesDef makeSeries(std::string Name, SearchFn Search) {
  return {std::move(Name),
          [Search](uint32_t Key, sim::RecordAccess &A) {
            return Search(Key, A);
          },
          [Search](uint32_t Key, sim::NativeAccess &A) {
            return Search(Key, A);
          }};
}

/// Runs the cold-start sweep for a set of tree organizations:
///  1. record each organization's largest-count access stream once
///     (native traversal, no simulation) with per-count prefix marks,
///  2. build one TraceShardIndex per organization (the sweep counts are
///     its cuts) and replay every (organization x count) prefix through
///     a fresh hierarchy with replayParallel, which fans the per-shard
///     sub-streams across SweepRunner workers — and falls back to a
///     bit-identical serial walk on single-core hosts,
///  3. measure native wall time serially (timing must not run under
///     parallel load), after an untimed warm-up pass per organization.
std::vector<SearchSeries>
measureAll(const std::vector<SeriesDef> &Defs, uint64_t NumKeys,
           const std::vector<uint64_t> &SearchCounts,
           const sim::HierarchyConfig &Config,
           obs::PerfCounters *Hw = nullptr) {
  size_t Counts = SearchCounts.size();
  std::vector<sim::TraceBuffer> Traces(Defs.size());
  std::vector<std::vector<size_t>> Prefixes(Defs.size());
  SweepRunner Runner;

  // Record once per organization (cells share the read-only trees).
  {
    metrics::ScopedSpan RecordSpan("fig5.record");
    Runner.run(Defs.size(), [&](size_t S) {
      sim::RecordAccess RA(Traces[S]);
      Xoshiro256 Rng(0xF16'5EEDULL);
      uint64_t MaxCount = SearchCounts.back();
      size_t NextCount = 0;
      for (uint64_t I = 0; I < MaxCount; ++I) {
        Defs[S].RecordSearch(
            BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), RA);
        while (NextCount < Counts && SearchCounts[NextCount] == I + 1) {
          Prefixes[S].push_back(Traces[S].records());
          ++NextCount;
        }
      }
      Traces[S].seal();
    });
  }

  // Replay prefixes: one shard index per organization, every sweep
  // count a cut. Each (organization x count) cell replays its prefix
  // through a fresh cold hierarchy with replayParallel — the shard
  // sub-streams fan across the pool, and the merged statistics are
  // bit-identical to the serial re-executing sweep this replaced (the
  // fallback on single-core hosts literally is that serial walk).
  std::vector<SearchSeries> Series(Defs.size());
  for (size_t S = 0; S < Defs.size(); ++S) {
    Series[S].Name = Defs[S].Name;
    Series[S].CyclesPerSearch.resize(Counts);
    Series[S].NanosPerSearch.resize(Counts);
    Series[S].SimL1Misses.resize(Counts);
    Series[S].SimL2Misses.resize(Counts);
    Series[S].SimTlbMisses.resize(Counts);
  }
  {
    metrics::ScopedSpan ReplaySpan("fig5.replay");
    for (size_t S = 0; S < Defs.size(); ++S) {
      sim::TraceShardIndex Index(Traces[S].view(), Config, Prefixes[S],
                                 Runner.threads());
      for (size_t C = 0; C < Counts; ++C) {
        sim::MemoryHierarchy M(Config);
        obs::ReplayShardingEvent Event = M.replayParallel(
            Index, 0, Index.cutForRecords(Prefixes[S][C]), Runner);
        Series[S].Sharding.add(Event);
        Series[S].CyclesPerSearch[C] =
            double(M.now()) / double(SearchCounts[C]);
        Series[S].SimL1Misses[C] = M.stats().L1Misses;
        Series[S].SimL2Misses[C] = M.stats().L2Misses;
        Series[S].SimTlbMisses[C] = M.stats().TlbMisses;
      }
    }
  }

  // Native wall time over the same key sequence; accumulate the hit
  // count into a volatile sink so the searches cannot be optimized
  // away. The untimed warm-up (its own RNG, so the timed key sequence
  // still starts from the recorded seed) pages each organization's
  // working set into the host caches before its first timed cell.
  for (size_t S = 0; S < Defs.size(); ++S) {
    {
      metrics::ScopedSpan WarmupSpan("fig5.native_warmup");
      sim::NativeAccess WarmAccess;
      Xoshiro256 WarmRng(0xC01D'CAFEULL);
      uint64_t WarmHits = 0;
      for (uint64_t I = 0; I < NativeWarmupSearches; ++I)
        WarmHits += Defs[S].NativeSearch(
            BinarySearchTree::keyAt(WarmRng.nextBounded(NumKeys)),
            WarmAccess);
      static volatile uint64_t WarmSink;
      WarmSink = WarmHits;
      (void)WarmSink;
    }
    metrics::ScopedSpan WindowSpan("fig5.native_window");
    if (Hw)
      Series[S].Hw.resize(Counts);
    for (size_t C = 0; C < Counts; ++C) {
      sim::NativeAccess NA;
      Xoshiro256 Rng2(0xF16'5EEDULL);
      // The PerfScope brackets exactly the timed window, so hardware
      // counts and NanosPerSearch describe the same searches.
      std::unique_ptr<obs::PerfScope> Scope;
      if (Hw)
        Scope = std::make_unique<obs::PerfScope>(*Hw, Series[S].Hw[C]);
      Timer T;
      uint64_t Hits = 0;
      for (uint64_t I = 0; I < SearchCounts[C]; ++I)
        Hits += Defs[S].NativeSearch(
            BinarySearchTree::keyAt(Rng2.nextBounded(NumKeys)), NA);
      static volatile uint64_t Sink;
      Sink = Hits;
      (void)Sink;
      Series[S].NanosPerSearch[C] =
          double(T.elapsedNs()) / double(SearchCounts[C]);
      Scope.reset(); // Stop counters before anything else runs.
    }
  }
  return Series;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader(
      "Figure 5: binary tree microbenchmark",
      "Chilimbi/Hill/Larus PLDI'99, Fig. 5 (avg search time vs repeated "
      "searches; E5000 cache parameters)",
      Full);

  // Paper: 2,097,151 keys (40x the 1MB L2). Default: 2^20-1 (24x).
  const uint64_t NumKeys = Full ? (1ULL << 21) - 1 : (1ULL << 20) - 1;
  std::vector<uint64_t> SearchCounts = {10, 100, 1000, 10000, 100000};
  if (Full)
    SearchCounts.push_back(1000000);

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  CacheParams Params = CacheParams::fromHierarchy(Config);

  // --hw: wrap every timed native window in a perf_event group so the
  // summary pairs simulated misses with hardware counts. Constructed
  // once so a denied host reports one stable reason. Everything below
  // prints only under the flag — default stdout stays byte-identical.
  const bool HwFlag = bench::hasFlag(Argc, Argv, "--hw");
  std::unique_ptr<obs::PerfCounters> Hw;
  if (HwFlag)
    Hw = std::make_unique<obs::PerfCounters>();

  auto PrintHwSection = [&](const std::vector<SearchSeries> &All,
                            const std::vector<uint64_t> &Counts) {
    if (!HwFlag)
      return;
    if (!Hw->available()) {
      std::printf("\nhw: unavailable (%s)\n", Hw->reason().c_str());
      return;
    }
    std::printf("\nHardware counters per search (--hw; multiplexing-"
                "corrected):\n");
    TablePrinter T({"series", "searches", "cycles", "instr", "l1d miss",
                    "llc miss", "dtlb miss", "run%"});
    for (const SearchSeries &S : All) {
      for (size_t I = 0; I < Counts.size(); ++I) {
        if (I >= S.Hw.size() || !S.Hw[I].Available)
          continue;
        const obs::PerfReading &R = S.Hw[I];
        double N = double(Counts[I]);
        auto Per = [&](unsigned E) {
          return R.has(E)
                     ? TablePrinter::fmt(double(R.Scaled[E]) / N, 1)
                     : std::string("-");
        };
        T.addRow({S.Name, TablePrinter::fmtInt(Counts[I]),
                  Per(obs::PerfCycles), Per(obs::PerfInstructions),
                  Per(obs::PerfL1dMisses), Per(obs::PerfLlcMisses),
                  Per(obs::PerfDtlbMisses),
                  TablePrinter::fmt(100.0 * R.runningShare(), 0) + "%"});
      }
    }
    T.print();
  };

  std::printf("tree: %" PRIu64 " keys, %.1f MB of nodes (L2 = %.1f MB)\n\n",
              NumKeys, NumKeys * sizeof(BstNode) / 1048576.0,
              Config.L2.CapacityBytes / 1048576.0);

  auto RandomTree = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
  auto DfsTree = BinarySearchTree::build(NumKeys, LayoutScheme::DepthFirst);
  std::vector<uint32_t> Keys(NumKeys);
  for (uint64_t I = 0; I < NumKeys; ++I)
    Keys[I] = BinarySearchTree::keyAt(I);
  BTree Btree = BTree::buildFromSorted(Keys, Params);
  Keys.clear();
  Keys.shrink_to_fit();
  CTree Ctree(Params);
  {
    auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
    Ctree.adopt(Source.root());
  }

  std::vector<SeriesDef> Defs;
  Defs.push_back(makeSeries("random binary tree",
                            [&](uint32_t Key, auto &A) {
                              return RandomTree.search(Key, A) != nullptr;
                            }));
  Defs.push_back(makeSeries("depth-first binary tree",
                            [&](uint32_t Key, auto &A) {
                              return DfsTree.search(Key, A) != nullptr;
                            }));
  Defs.push_back(makeSeries("in-core B-tree", [&](uint32_t Key, auto &A) {
    return Btree.contains(Key, A);
  }));
  Defs.push_back(makeSeries("transparent C-tree",
                            [&](uint32_t Key, auto &A) {
                              return Ctree.search(Key, A) != nullptr;
                            }));
  std::vector<SearchSeries> Series =
      measureAll(Defs, NumKeys, SearchCounts, Config, Hw.get());

  TablePrinter Cycles({"searches", Series[0].Name, Series[1].Name,
                       Series[2].Name, Series[3].Name});
  for (size_t I = 0; I < SearchCounts.size(); ++I)
    Cycles.addRow({TablePrinter::fmtInt(SearchCounts[I]),
                   TablePrinter::fmt(Series[0].CyclesPerSearch[I], 1),
                   TablePrinter::fmt(Series[1].CyclesPerSearch[I], 1),
                   TablePrinter::fmt(Series[2].CyclesPerSearch[I], 1),
                   TablePrinter::fmt(Series[3].CyclesPerSearch[I], 1)});
  std::printf("Simulated cycles per search (cold start; E5000 model):\n");
  Cycles.print();

  TablePrinter Nanos({"searches", Series[0].Name, Series[1].Name,
                      Series[2].Name, Series[3].Name});
  for (size_t I = 0; I < SearchCounts.size(); ++I)
    Nanos.addRow({TablePrinter::fmtInt(SearchCounts[I]),
                  TablePrinter::fmt(Series[0].NanosPerSearch[I], 1),
                  TablePrinter::fmt(Series[1].NanosPerSearch[I], 1),
                  TablePrinter::fmt(Series[2].NanosPerSearch[I], 1),
                  TablePrinter::fmt(Series[3].NanosPerSearch[I], 1)});
  std::printf("\nNative nanoseconds per search (host hardware):\n");
  Nanos.print();
  PrintHwSection(Series, SearchCounts);

  size_t Last = SearchCounts.size() - 1;
  double Rand = Series[0].CyclesPerSearch[Last];
  double Dfs = Series[1].CyclesPerSearch[Last];
  double Bt = Series[2].CyclesPerSearch[Last];
  double Ct = Series[3].CyclesPerSearch[Last];
  std::printf("\nSteady-ish factors at %s searches (simulated):\n",
              TablePrinter::fmtInt(SearchCounts[Last]).c_str());
  std::printf("  C-tree vs random:      %s  (paper: ~4-5x)\n",
              bench::speedupStr(Rand, Ct).c_str());
  std::printf("  C-tree vs depth-first: %s  (paper: ~2.5-3x)\n",
              bench::speedupStr(Dfs, Ct).c_str());
  std::printf("  C-tree vs B-tree:      %s  (paper: ~1.5x)\n",
              bench::speedupStr(Bt, Ct).c_str());
  std::printf("  B-tree vs random:      %s  (paper: ~4-5x)\n",
              bench::speedupStr(Rand, Bt).c_str());

  //===------------------------------------------------------------------===//
  // Telemetry: --profile renders a per-structure attribution report;
  // --trace <path> additionally streams the events as a ccl-trace-v1
  // JSONL dump (render it later with tools/cclstat).
  //===------------------------------------------------------------------===//
  std::string TracePath = bench::flagValue(Argc, Argv, "--trace");
  std::string FieldsPath = bench::flagValue(Argc, Argv, "--fields");
  if (bench::hasFlag(Argc, Argv, "--profile") || !TracePath.empty() ||
      !FieldsPath.empty()) {
    const uint64_t ProfileSearches = Full ? 200000 : 50000;

    obs::RegionRegistry Registry;
    Registry.registerArena(RandomTree.storage(), "random binary tree");
    Registry.registerArena(DfsTree.storage(), "depth-first binary tree");
    if (const ColoredArena *A = Btree.arena())
      Registry.registerColoredArena(*A, "in-core B-tree");
    if (const ColoredArena *A = Ctree.arena())
      Registry.registerColoredArena(*A, "transparent C-tree");

    obs::AttributionConfig AConfig =
        obs::AttributionConfig::fromHierarchy(Config, Params.HotSets);
    obs::AttributionSink Sink(Registry, AConfig);
    obs::MultiObserver Fan;
    Fan.add(&Sink);

    // --fields <path>: attach a FieldProfileSink over the reflected
    // node types and export the per-field affinity counters as a
    // ccl-fields-v1 dump (render with cclstat; feed to ccllint
    // --fields for profile-guided split/reorder diagnostics).
    std::unique_ptr<obs::FieldProfileSink> Fields;
    if (!FieldsPath.empty()) {
      reflectTreeTypes();
      Fields = std::make_unique<obs::FieldProfileSink>();
      int BstId = reflect::TypeRegistry::global().idOf("BstNode");
      int BtId = reflect::TypeRegistry::global().idOf("BTreeNode");
      auto AddBst = [&](const BstNode *Root) {
        std::deque<const BstNode *> Work{Root};
        while (!Work.empty()) {
          const BstNode *N = Work.front();
          Work.pop_front();
          if (!N)
            continue;
          Fields->addObject(N, uint32_t(BstId));
          Work.push_back(N->Left);
          Work.push_back(N->Right);
        }
      };
      if (BstId >= 0) {
        AddBst(RandomTree.root());
        AddBst(DfsTree.root());
        AddBst(Ctree.root());
      }
      if (BtId >= 0) {
        std::deque<const BTreeNode *> Work{Btree.root()};
        while (!Work.empty()) {
          const BTreeNode *N = Work.front();
          Work.pop_front();
          if (!N)
            continue;
          Fields->addObject(N, uint32_t(BtId));
          if (!N->Leaf)
            for (unsigned I = 0; I <= N->Count; ++I)
              Work.push_back(N->Kids[I]);
        }
      }
      Fields->seal();
      Fan.add(Fields.get());
    }

    std::FILE *TraceFile = nullptr;
    std::unique_ptr<obs::TraceSink> Tracer;
    if (!TracePath.empty()) {
      TraceFile = std::fopen(TracePath.c_str(), "w");
      if (!TraceFile) {
        std::fprintf(stderr, "fig5: cannot open %s for writing\n",
                     TracePath.c_str());
        return 1;
      }
      obs::TraceSinkOptions Options;
      std::string Sample = bench::flagValue(Argc, Argv, "--trace-sample");
      if (!Sample.empty())
        Options.SampleInterval = std::strtoull(Sample.c_str(), nullptr, 10);
      Tracer = std::make_unique<obs::TraceSink>(TraceFile, AConfig,
                                                &Registry, Options);
      Fan.add(Tracer.get());
    }

    // One shared hierarchy for all four structures, so the report shows
    // them side by side (caches stay warm across structures, like an
    // application touching several data structures in turn).
    sim::MemoryHierarchy M(Config);
    M.attachObserver(&Fan);
    sim::SimAccess A(M);
    auto RunSearches = [&](auto &&Search) {
      Xoshiro256 Rng(0xF16'5EEDULL);
      for (uint64_t I = 0; I < ProfileSearches; ++I)
        Search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
    };
    RunSearches([&](uint32_t Key, auto &Acc) {
      return RandomTree.search(Key, Acc) != nullptr;
    });
    RunSearches([&](uint32_t Key, auto &Acc) {
      return DfsTree.search(Key, Acc) != nullptr;
    });
    RunSearches([&](uint32_t Key, auto &Acc) {
      return Btree.contains(Key, Acc);
    });
    RunSearches([&](uint32_t Key, auto &Acc) {
      return Ctree.search(Key, Acc) != nullptr;
    });
    Sink.finalize();

    std::printf("\n--- telemetry: %" PRIu64
                " searches per structure, one shared hierarchy ---\n\n",
                ProfileSearches);
    Sink.printReport();
    if (!M.stats().isConsistent())
      std::fprintf(stderr, "fig5: WARNING: inconsistent simulator stats\n");
    if (TraceFile) {
      std::fclose(TraceFile);
      std::printf("\nwrote %" PRIu64 " trace lines to %s "
                  "(render: cclstat %s)\n",
                  Tracer->linesWritten(), TracePath.c_str(),
                  TracePath.c_str());
    }
    if (Fields) {
      std::FILE *FieldsFile = std::fopen(FieldsPath.c_str(), "w");
      if (!FieldsFile) {
        std::fprintf(stderr, "fig5: cannot open %s for writing\n",
                     FieldsPath.c_str());
        return 1;
      }
      obs::writeFieldsJsonl(*Fields, FieldsFile);
      std::fclose(FieldsFile);
      std::printf("wrote field-affinity profile to %s "
                  "(render: cclstat %s; lint: ccllint --fields %s)\n",
                  FieldsPath.c_str(), FieldsPath.c_str(),
                  FieldsPath.c_str());
    }
    M.attachObserver(nullptr);
  }

  //===------------------------------------------------------------------===//
  // 32-bit-offset ("paper regime") section: 12-byte nodes, k = 5.
  //===------------------------------------------------------------------===//
  std::printf("\n--- 32-bit compact-node mode (the paper's SPARC-32 "
              "pointer-width regime; 16B nodes, k=%zu) ---\n",
              size_t(Params.BlockBytes / sizeof(CompactBstNode)));

  CompactTree CRandom = CompactTree::build(NumKeys, Params,
                                           LayoutScheme::Random,
                                           /*Color=*/false);
  CompactTree CDfs = CompactTree::build(NumKeys, Params,
                                        LayoutScheme::DepthFirst,
                                        /*Color=*/false);
  std::vector<uint32_t> K2(NumKeys);
  for (uint64_t I = 0; I < NumKeys; ++I)
    K2[I] = BinarySearchTree::keyAt(I);
  // Two occupancies for the insert-ready slack B-trees carry: 0.69 is
  // the steady state of random insertion, 0.50 the B-tree minimum.
  CompactBTree CBtree =
      CompactBTree::buildFromSorted(K2, Params, /*FillFactor=*/0.69,
                                    /*Color=*/true);
  CompactBTree CBtreeHalf =
      CompactBTree::buildFromSorted(K2, Params, /*FillFactor=*/0.50,
                                    /*Color=*/true);
  K2.clear();
  K2.shrink_to_fit();
  CompactTree CCtree = CompactTree::build(NumKeys, Params,
                                          LayoutScheme::Subtree,
                                          /*Color=*/true);

  std::vector<SeriesDef> CDefs;
  CDefs.push_back(makeSeries("random binary tree",
                             [&](uint32_t Key, auto &A) {
                               return CRandom.contains(Key, A);
                             }));
  CDefs.push_back(makeSeries("depth-first binary tree",
                             [&](uint32_t Key, auto &A) {
                               return CDfs.contains(Key, A);
                             }));
  CDefs.push_back(makeSeries("B-tree (fill .69)",
                             [&](uint32_t Key, auto &A) {
                               return CBtree.contains(Key, A);
                             }));
  CDefs.push_back(makeSeries("B-tree (fill .50)",
                             [&](uint32_t Key, auto &A) {
                               return CBtreeHalf.contains(Key, A);
                             }));
  CDefs.push_back(makeSeries("transparent C-tree",
                             [&](uint32_t Key, auto &A) {
                               return CCtree.contains(Key, A);
                             }));
  std::vector<SearchSeries> CSeries =
      measureAll(CDefs, NumKeys, SearchCounts, Config, Hw.get());

  TablePrinter CCycles({"searches", CSeries[0].Name, CSeries[1].Name,
                        CSeries[2].Name, CSeries[3].Name,
                        CSeries[4].Name});
  for (size_t I = 0; I < SearchCounts.size(); ++I)
    CCycles.addRow({TablePrinter::fmtInt(SearchCounts[I]),
                    TablePrinter::fmt(CSeries[0].CyclesPerSearch[I], 1),
                    TablePrinter::fmt(CSeries[1].CyclesPerSearch[I], 1),
                    TablePrinter::fmt(CSeries[2].CyclesPerSearch[I], 1),
                    TablePrinter::fmt(CSeries[3].CyclesPerSearch[I], 1),
                    TablePrinter::fmt(CSeries[4].CyclesPerSearch[I], 1)});
  std::printf("Simulated cycles per search (cold start):\n");
  CCycles.print();

  double CRand = CSeries[0].CyclesPerSearch[Last];
  double CDfsC = CSeries[1].CyclesPerSearch[Last];
  double CBt = CSeries[2].CyclesPerSearch[Last];
  double CBtHalf = CSeries[3].CyclesPerSearch[Last];
  double CCt = CSeries[4].CyclesPerSearch[Last];
  std::printf("\nCompact-mode factors at %s searches (simulated):\n",
              TablePrinter::fmtInt(SearchCounts[Last]).c_str());
  std::printf("  C-tree vs random:           %s  (paper: ~4-5x)\n",
              bench::speedupStr(CRand, CCt).c_str());
  std::printf("  C-tree vs depth-first:      %s  (paper: ~2.5-3x)\n",
              bench::speedupStr(CDfsC, CCt).c_str());
  std::printf("  C-tree vs B-tree(.69):      %s  (paper: ~1.5x)\n",
              bench::speedupStr(CBt, CCt).c_str());
  std::printf("  C-tree vs B-tree(.50):      %s  (paper: ~1.5x)\n",
              bench::speedupStr(CBtHalf, CCt).c_str());
  if (HwFlag && Hw->available())
    PrintHwSection(CSeries, SearchCounts);

  // Machine-readable summary (--out <path> / CCL_BENCH_OUT).
  bench::BenchJson Json("fig5", Full);
  Json.beginResult("(meta)");
  Json.str("section", "meta");
  Json.integer("native_warmup_searches", NativeWarmupSearches);
  if (HwFlag) {
    Json.beginResult("(hw)");
    Json.str("section", "meta");
    Json.str("metric", "hw");
    Json.str("hw_available", Hw->available() ? "yes" : "no");
    if (!Hw->available())
      Json.str("hw_reason", Hw->reason());
  }
  auto AddSeries = [&](const char *Section,
                       const std::vector<SearchSeries> &All) {
    for (const SearchSeries &S : All) {
      for (size_t I = 0; I < SearchCounts.size(); ++I) {
        Json.beginResult(S.Name);
        Json.str("section", Section);
        Json.integer("searches", SearchCounts[I]);
        Json.num("cycles_per_search", S.CyclesPerSearch[I]);
        Json.num("nanos_per_search", S.NanosPerSearch[I]);
        Json.integer("sim_l1_misses", S.SimL1Misses[I]);
        Json.integer("sim_l2_misses", S.SimL2Misses[I]);
        Json.integer("sim_tlb_misses", S.SimTlbMisses[I]);
        // Paired hardware counts (--hw with perf available): same
        // document, so cclstat --bench can build the divergence table.
        if (I < S.Hw.size() && S.Hw[I].Available) {
          const obs::PerfReading &R = S.Hw[I];
          auto HwField = [&](const char *Key, unsigned E) {
            if (R.has(E))
              Json.integer(Key, uint64_t(R.Scaled[E]));
          };
          HwField("hw_cycles", obs::PerfCycles);
          HwField("hw_instructions", obs::PerfInstructions);
          HwField("hw_l1d_misses", obs::PerfL1dMisses);
          HwField("hw_llc_misses", obs::PerfLlcMisses);
          HwField("hw_dtlb_misses", obs::PerfDtlbMisses);
          Json.integer("hw_time_enabled_ns", R.TimeEnabledNs);
          Json.integer("hw_time_running_ns", R.TimeRunningNs);
        }
      }
      Json.beginResult(S.Name);
      Json.str("section", Section);
      Json.str("metric", "replay_sharding");
      Json.integer("replays", S.Sharding.Replays);
      Json.integer("parallel_replays", S.Sharding.ParallelReplays);
      Json.integer("shards", S.Sharding.Shards);
      Json.integer("workers", S.Sharding.Workers);
      Json.num("max_imbalance", S.Sharding.MaxImbalance);
      if (!S.Sharding.LastSerialReason.empty())
        Json.str("serial_reason", S.Sharding.LastSerialReason);
    }
  };
  AddSeries("64bit", Series);
  AddSeries("compact", CSeries);
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  obs::dumpProcessMetrics(bench::metricsOutPath(Argc, Argv));
  return 0;
}
