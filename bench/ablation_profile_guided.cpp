//===- bench/ablation_profile_guided.cpp - §7 future-work extension ----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// The paper's §7 names profiling as future work for reducing programmer
// effort and improving placement. This ablation implements it: searches
// follow a Zipf distribution (a few keys are very popular), so the hot
// working set is a set of root-to-leaf *paths*, not simply the top of
// the tree. Topology-based coloring (the paper's ccmorph) protects the
// top levels; profile-guided coloring protects the measured-hot
// clusters. The skew parameter sweeps from uniform (s=0, where topology
// is optimal) to heavily skewed (s=1.2, where the profile wins).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "support/Zipf.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"

#include <cinttypes>
#include <numeric>

using namespace ccl;
using namespace ccl::trees;

namespace {

/// Zipf ranks are scattered over the key space deterministically so the
/// popular keys are not clustered in key order.
std::vector<uint32_t> scatterKeys(uint64_t NumKeys, uint64_t Seed) {
  std::vector<uint32_t> Keys(NumKeys);
  for (uint64_t I = 0; I < NumKeys; ++I)
    Keys[I] = BinarySearchTree::keyAt(I);
  Xoshiro256 Rng(Seed);
  Rng.shuffle(Keys);
  return Keys;
}

template <typename TreeF>
uint64_t steadyCycles(const std::vector<uint32_t> &RankedKeys,
                      const ZipfDistribution &Zipf, unsigned Warmup,
                      unsigned Window, const sim::HierarchyConfig &Config,
                      TreeF &&Search) {
  sim::MemoryHierarchy M(Config);
  sim::SimAccess A(M);
  Xoshiro256 Rng(0x21BFULL);
  for (unsigned I = 0; I < Warmup; ++I)
    Search(RankedKeys[Zipf(Rng)], A);
  uint64_t Start = M.now();
  for (unsigned I = 0; I < Window; ++I)
    Search(RankedKeys[Zipf(Rng)], A);
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader(
      "Ablation: profile-guided coloring under skewed access",
      "Chilimbi/Hill/Larus PLDI'99, §7 future work (profiling)", Full);

  const uint64_t NumKeys = Full ? (1ULL << 21) - 1 : (1ULL << 19) - 1;
  unsigned Warmup = 4000;
  unsigned Window = Full ? 30000 : 12000;
  unsigned ProfileSearches = 20000;

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  CacheParams Params = CacheParams::fromHierarchy(Config);
  std::vector<uint32_t> RankedKeys = scatterKeys(NumKeys, 0x5ca77e2ULL);

  std::printf("tree: %" PRIu64 " keys; popularity ranks scattered over "
              "the key space\n\n",
              NumKeys);

  TablePrinter Table({"zipf s", "top-1% mass", "topology-colored",
                      "profile-colored", "profile gain"});
  // One cell per skew level. Each cell builds its own trees, profile,
  // and simulators, so the sweep runs in parallel; rows are assembled
  // serially in cell order afterwards (byte-identical table).
  const std::vector<double> Skews = {0.0, 0.6, 0.9, 1.2};
  std::vector<std::vector<std::string>> Rows(Skews.size());
  // Raw per-cell numbers for the machine-readable summary (--out).
  struct CellOut {
    double TopMass = 0, TopoCycles = 0, ProfCycles = 0;
  };
  std::vector<CellOut> Out(Skews.size());
  SweepRunner Runner;
  Runner.run(Skews.size(), [&](size_t Cell) {
    double Skew = Skews[Cell];
    ZipfDistribution Zipf(NumKeys, Skew);

    // Topology-colored C-tree (the paper's ccmorph).
    auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
    CTree Topo(Params);
    Topo.adopt(Source.root());

    // Profile run (native, untimed), then profile-guided reorganization.
    CcMorph<BstNode, BstAdapter> Morph(Params);
    CcMorph<BstNode, BstAdapter>::Profile Counts;
    sim::NativeAccess NA;
    Xoshiro256 Rng(0x21BFULL);
    auto Train = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
    for (unsigned I = 0; I < ProfileSearches; ++I)
      bstSearchProfiled(Train.root(), RankedKeys[Zipf(Rng)], NA, Counts);
    BstNode *Root = Morph.reorganizeProfiled(
        const_cast<BstNode *>(Train.root()), Counts);
    uint64_t TopoCycles = steadyCycles(
        RankedKeys, Zipf, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { Topo.search(Key, A); });
    uint64_t ProfCycles = steadyCycles(
        RankedKeys, Zipf, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { bstSearch(Root, Key, A); });
    Rows[Cell] =
        {TablePrinter::fmt(Skew, 1),
         TablePrinter::fmt(100.0 * Zipf.topMass(NumKeys / 100), 1) + "%",
         TablePrinter::fmt(double(TopoCycles) / Window, 1),
         TablePrinter::fmt(double(ProfCycles) / Window, 1),
         bench::speedupStr(double(TopoCycles), double(ProfCycles))};
    Out[Cell] = {Zipf.topMass(NumKeys / 100), double(TopoCycles) / Window,
                 double(ProfCycles) / Window};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  Table.print();
  std::printf("\nShape to check: at s=0 (uniform) topology-based coloring "
              "is already optimal (the hot set IS the\ntop of the tree); "
              "as skew grows, the measured profile finds the hot paths "
              "that topology cannot.\n");

  bench::BenchJson Json("ablation_profile_guided", Full);
  for (size_t I = 0; I < Skews.size(); ++I) {
    Json.beginResult("s=" + TablePrinter::fmt(Skews[I], 1));
    Json.num("zipf_s", Skews[I]);
    Json.num("top1pct_mass", Out[I].TopMass);
    Json.num("topology_cycles_per_search", Out[I].TopoCycles);
    Json.num("profile_cycles_per_search", Out[I].ProfCycles);
    Json.num("profile_gain", Out[I].TopoCycles / Out[I].ProfCycles);
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
