//===- bench/table2_benchmark_characteristics.cpp - Paper Table 2 ------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Table 2: "Benchmark characteristics" — the four Olden benchmarks, the
// pointer structures they build, their inputs, and measured memory
// allocated. Paper values: treeadd (binary tree, 256K nodes, 4MB),
// health (doubly linked lists, level 3 / time 3000, 828KB), mst (array
// of singly linked lists, 512 nodes, 12KB), perimeter (quadtree, 4Kx4K
// image, 64MB — with 32-bit pointers and a different node layout).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "olden/Health.h"
#include "olden/Mst.h"
#include "olden/Perimeter.h"
#include "olden/TreeAdd.h"

using namespace ccl;
using namespace ccl::olden;

namespace {

std::string formatBytes(uint64_t Bytes) {
  if (Bytes >= 1048576)
    return TablePrinter::fmt(double(Bytes) / 1048576.0, 1) + " MB";
  return TablePrinter::fmtInt(Bytes / 1024) + " KB";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Table 2: Olden benchmark characteristics",
                     "Chilimbi/Hill/Larus PLDI'99, Table 2", Full);

  TablePrinter Table({"name", "description", "main pointer structures",
                      "input data set", "memory allocated", "paper"});

  // Machine-readable summary (--out <path> / CCL_BENCH_OUT).
  bench::BenchJson Json("table2", Full);
  auto Emit = [&Json](const char *Name, const BenchResult &R,
                      const char *Structures, const char *PaperMemory) {
    Json.beginResult(Name);
    Json.str("structures", Structures);
    Json.integer("heap_footprint_bytes", R.HeapFootprintBytes);
    Json.integer("checksum", R.Checksum);
    Json.str("paper_memory", PaperMemory);
  };

  {
    TreeAddConfig C;
    C.Levels = 18;
    C.Iterations = 1;
    BenchResult R = runTreeAdd(C, Variant::Base, nullptr);
    Table.addRow({"treeadd", "sums the values stored in tree nodes",
                  "binary tree",
                  TablePrinter::fmtInt((1u << C.Levels) - 1) + " nodes",
                  formatBytes(R.HeapFootprintBytes), "4 MB"});
    Emit("treeadd", R, "binary tree", "4 MB");
  }
  {
    HealthConfig C;
    C.MaxLevel = 3;
    C.Steps = Full ? 3000 : 1000;
    BenchResult R = runHealth(C, Variant::Base, nullptr);
    Table.addRow({"health", "simulation of Colombian health-care system",
                  "doubly linked lists",
                  "max level 3, max time " + TablePrinter::fmtInt(C.Steps),
                  formatBytes(R.HeapFootprintBytes), "828 KB"});
    Emit("health", R, "doubly linked lists", "828 KB");
  }
  {
    MstConfig C;
    C.NumVertices = 512;
    C.Degree = 8;
    BenchResult R = runMst(C, Variant::Base, nullptr);
    Table.addRow({"mst", "computes minimum spanning tree of a graph",
                  "array of singly linked lists (chained hash)",
                  TablePrinter::fmtInt(C.NumVertices) + " nodes",
                  formatBytes(R.HeapFootprintBytes), "12 KB"});
    Emit("mst", R, "array of singly linked lists (chained hash)", "12 KB");
  }
  {
    PerimeterConfig C;
    C.Levels = Full ? 12 : 11;
    BenchResult R = runPerimeter(C, Variant::Base, nullptr);
    Table.addRow({"perimeter", "computes perimeter of regions in images",
                  "quadtree",
                  TablePrinter::fmtInt(1u << C.Levels) + " x " +
                      TablePrinter::fmtInt(1u << C.Levels) + " image",
                  formatBytes(R.HeapFootprintBytes), "64 MB"});
    Emit("perimeter", R, "quadtree", "64 MB");
  }
  Table.print();
  std::printf("\nNotes: our nodes use 64-bit pointers (the paper's SPARC "
              "binaries used 32-bit), and our quadtree\nstores only tree "
              "nodes (the paper's 64MB includes its image "
              "representation), so absolute footprints differ;\nthe "
              "structures and traversals are the ones that matter for "
              "the placement experiments.\n");
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
