//===- bench/ablation_subtree_size.cpp - §2.1 clustering ablation ------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the clustering scheme and the cluster size k. Section 2.1
// derives that a subtree of k nodes clustered in a block yields
// log2(k+1) expected accesses per block under random search, vs < 2 for
// a depth-first chain of k nodes — an advantage for k > 3. To sweep k
// beyond 2 with 24-byte nodes, this ablation uses a 256-byte-block L2
// variant in addition to the standard 64/128-byte configurations.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/CTreeModel.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"

#include <cinttypes>
#include <cmath>

using namespace ccl;
using namespace ccl::trees;

namespace {

uint64_t steadyCycles(const CTree &Tree, uint64_t NumKeys, unsigned Warmup,
                      unsigned Window, const sim::HierarchyConfig &Config) {
  sim::MemoryHierarchy M(Config);
  sim::SimAccess A(M);
  Xoshiro256 Rng(0xAB1A7EULL);
  for (unsigned I = 0; I < Warmup; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  uint64_t Start = M.now();
  for (unsigned I = 0; I < Window; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Ablation: subtree cluster size k and clustering "
                     "scheme",
                     "Chilimbi/Hill/Larus PLDI'99, §2.1 analysis", Full);

  // A 1MB L2 with 256-byte blocks: up to k = 10 nodes per block.
  sim::HierarchyConfig Config;
  Config.L1 = {16 * 1024, 16, 1, 1};
  Config.L2 = {1024 * 1024, 256, 1, 6};
  Config.MemoryLatency = 64;
  Config.Tlb = {true, 64, 8192, 40};
  CacheParams Params = CacheParams::fromHierarchy(Config);

  const uint64_t NumKeys = Full ? (1ULL << 21) - 1 : (1ULL << 19) - 1;
  unsigned Warmup = 3000;
  unsigned Window = Full ? 30000 : 12000;

  std::printf("tree: %" PRIu64 " keys; L2 blocks of %u bytes hold up to "
              "%zu nodes\n\n",
              NumKeys, Config.L2.BlockBytes,
              size_t(Config.L2.BlockBytes / sizeof(BstNode)));

  TablePrinter Table({"k", "subtree cycles", "depth-first cycles",
                      "subtree gain", "model K=log2(k+1)",
                      "model chain K"});
  auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
  // One cell per cluster size k; cells share the read-only source tree
  // and each adopts its own C-trees, so the sweep runs in parallel and
  // rows are assembled in cell order afterwards (byte-identical table).
  const std::vector<uint64_t> Ks = {1, 2, 3, 5, 8, 10};
  std::vector<std::vector<std::string>> Rows(Ks.size());
  // Raw per-cell numbers for the machine-readable summary (--out).
  struct CellOut {
    uint64_t SubtreeCycles = 0, ChainCycles = 0;
  };
  std::vector<CellOut> Out(Ks.size());
  SweepRunner Runner;
  Runner.run(Ks.size(), [&](size_t Cell) {
    uint64_t K = Ks[Cell];
    MorphOptions Subtree;
    Subtree.Scheme = LayoutScheme::Subtree;
    Subtree.NodesPerBlock = size_t(K);
    CTree SubtreeTree(Params);
    SubtreeTree.adopt(Source.root(), Subtree);
    uint64_t SubtreeCycles =
        steadyCycles(SubtreeTree, NumKeys, Warmup, Window, Config);

    MorphOptions Chain;
    Chain.Scheme = LayoutScheme::DepthFirst;
    Chain.NodesPerBlock = size_t(K);
    CTree ChainTree(Params);
    ChainTree.adopt(Source.root(), Chain);
    uint64_t ChainCycles =
        steadyCycles(ChainTree, NumKeys, Warmup, Window, Config);

    // §2.1: expected in-block accesses for a k-chain is
    // 2*(1 - (1/2)^k) < 2; for a subtree it is log2(k+1).
    double ChainK = 2.0 * (1.0 - std::pow(0.5, double(K)));
    Rows[Cell] = {TablePrinter::fmtInt(K),
                  TablePrinter::fmtInt(SubtreeCycles),
                  TablePrinter::fmtInt(ChainCycles),
                  bench::speedupStr(double(ChainCycles),
                                    double(SubtreeCycles)),
                  TablePrinter::fmt(std::log2(double(K) + 1.0), 2),
                  TablePrinter::fmt(ChainK, 2)};
    Out[Cell] = {SubtreeCycles, ChainCycles};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  Table.print();
  std::printf("\nPaper shape to check: subtree clustering pulls ahead of "
              "depth-first chains as k grows past 3\n(both colored here; "
              "the separation is the spatial-locality K difference).\n");

  bench::BenchJson Json("ablation_subtree_size", Full);
  for (size_t I = 0; I < Ks.size(); ++I) {
    Json.beginResult("k=" + TablePrinter::fmtInt(Ks[I]));
    Json.integer("k", Ks[I]);
    Json.integer("subtree_cycles", Out[I].SubtreeCycles);
    Json.integer("chain_cycles", Out[I].ChainCycles);
    Json.num("subtree_gain",
             double(Out[I].ChainCycles) / double(Out[I].SubtreeCycles));
    Json.num("model_subtree_k", std::log2(double(Ks[I]) + 1.0));
    Json.num("model_chain_k", 2.0 * (1.0 - std::pow(0.5, double(Ks[I]))));
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
