//===- bench/fig10_model_validation.cpp - Paper Figure 10 --------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Figure 10: "Predicted and actual speedup for C-trees" — the Section 5
// analytic model's predicted cache-conscious speedup vs the measured
// speedup, across tree sizes 262,144 .. 4,194,304 keys (1M repeated
// searches in the paper; steady-state window here). The paper reports
// the model underestimating actual speedup by ~15% while matching the
// curve shape.
//
// "Actual" here is the simulated cycle ratio of a randomly-laid-out tree
// to a transparent C-tree on the E5000 memory model (the paper measured
// wall time on the real E5000).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/CTreeModel.h"
#include "obs/Export.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"
#include "trees/CompactTree.h"

#include <cinttypes>
#include <vector>

using namespace ccl;
using namespace ccl::trees;

namespace {

/// The four structures measured per tree size; each is one independent
/// sweep cell.
enum StructKind { Random64, CTree64, CompactRandom, CompactCTree };
constexpr size_t NumStructKinds = 4;

/// One cell's recorded access stream: warmup searches, a prefix mark,
/// then the measured window.
struct CellTrace {
  sim::TraceBuffer Buf;
  size_t WarmupRecords = 0;
};

/// Records one cell's warmup+window search stream (native traversal, no
/// simulation). Recording runs serially in the main thread so the
/// captured addresses — and therefore the simulated set indices after
/// the first-touch remap — do not depend on how concurrently-built
/// trees would have interleaved their heap allocations; the tree itself
/// is freed on return, leaving only the compact trace.
CellTrace recordCell(unsigned TreeBits, StructKind Kind, unsigned Warmup,
                     unsigned Window, const CacheParams &Params) {
  uint64_t NumKeys = (1ULL << TreeBits) - 1;
  CellTrace Trace;
  sim::RecordAccess A(Trace.Buf);
  auto Drive = [&](auto &&Search) {
    Xoshiro256 Rng(0xF1'0A11ULL);
    for (unsigned I = 0; I < Warmup; ++I)
      Search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
    Trace.WarmupRecords = Trace.Buf.records();
    for (unsigned I = 0; I < Window; ++I)
      Search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
    Trace.Buf.seal();
  };
  switch (Kind) {
  case Random64: {
    auto Random = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
    Drive([&](uint32_t Key, auto &P) { Random.search(Key, P); });
    break;
  }
  case CTree64: {
    CTree Ctree(Params);
    {
      auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
      Ctree.adopt(Source.root());
    }
    Drive([&](uint32_t Key, auto &P) { Ctree.search(Key, P); });
    break;
  }
  case CompactRandom: {
    CompactTree CRandom = CompactTree::build(NumKeys, Params,
                                             LayoutScheme::Random, false);
    Drive([&](uint32_t Key, auto &P) { CRandom.contains(Key, P); });
    break;
  }
  case CompactCTree: {
    CompactTree CCtree = CompactTree::build(NumKeys, Params,
                                            LayoutScheme::Subtree, true);
    Drive([&](uint32_t Key, auto &P) { CCtree.contains(Key, P); });
    break;
  }
  }
  return Trace;
}

/// Replays a recorded cell: warm the cache with the warmup prefix, then
/// measure the steady-state window. The warmup mark is an index cut, so
/// both phases run through replayParallel — sharded across the pool on
/// multi-core hosts, a bit-identical serial walk otherwise.
uint64_t replayCell(const CellTrace &Trace,
                    const sim::HierarchyConfig &Config,
                    const SweepRunner &Pool,
                    obs::ReplayShardingSummary &Sharding) {
  sim::TraceShardIndex Index(Trace.Buf.view(), Config,
                             {Trace.WarmupRecords}, Pool.threads());
  size_t WarmCut = Index.cutForRecords(Trace.WarmupRecords);
  sim::MemoryHierarchy M(Config);
  Sharding.add(M.replayParallel(Index, 0, WarmCut, Pool));
  uint64_t Start = M.now();
  Sharding.add(M.replayParallel(Index, WarmCut, Index.numCuts() - 1, Pool));
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Figure 10: predicted vs actual C-tree speedup",
                     "Chilimbi/Hill/Larus PLDI'99, Fig. 10 + Section 5.4",
                     Full);

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  // The model does not capture TLB effects (the paper names this as one
  // reason it underestimates actual speedup); keep the TLB on so the
  // measurement, like the paper's, includes them.
  CacheParams Params = CacheParams::fromHierarchy(Config);
  model::MemoryTimings Timings = model::MemoryTimings::ultraSparcE5000();

  std::vector<unsigned> Bits = {18, 19, 20};
  if (Full) {
    Bits.push_back(21);
    Bits.push_back(22); // Paper's 4,194,304-key point.
  }
  unsigned Warmup = 4000;
  unsigned Window = Full ? 40000 : 15000;

  uint64_t NodesPerBlock =
      std::max<uint64_t>(1, Params.BlockBytes / sizeof(BstNode));
  std::printf("subtree cluster size k = %" PRIu64
              " (paper used k=3 with 20-byte SPARC-32 nodes; 64-bit "
              "pointers make our node 24 bytes)\n\n",
              NodesPerBlock);

  // Record once, replay many: each (tree size, structure) cell's search
  // stream is recorded serially (deterministic allocation order, so the
  // captured addresses never depend on thread interleaving), then every
  // cell replays its warmup+window recording through its own cold
  // hierarchy via replayParallel, which fans the cell's shard
  // sub-streams across the SweepRunner pool. The merged statistics are
  // bit-identical to the serial simulating sweep this replaced, at any
  // thread count (single-core hosts take the serial fallback).
  std::vector<CellTrace> Traces;
  Traces.reserve(Bits.size() * NumStructKinds);
  for (size_t Cell = 0; Cell < Bits.size() * NumStructKinds; ++Cell)
    Traces.push_back(recordCell(Bits[Cell / NumStructKinds],
                                StructKind(Cell % NumStructKinds), Warmup,
                                Window, Params));
  std::vector<uint64_t> Cycles(Traces.size());
  SweepRunner Runner;
  obs::ReplayShardingSummary Sharding;
  for (size_t Cell = 0; Cell < Traces.size(); ++Cell)
    Cycles[Cell] = replayCell(Traces[Cell], Config, Runner, Sharding);

  bench::BenchJson Json("fig10", Full);
  TablePrinter Table({"tree keys", "D=log2(n+1)", "Rs(k=2)",
                      "predicted k=2", "measured k=2", "predicted k=4",
                      "measured k=4 (compact)"});
  for (size_t I = 0; I < Bits.size(); ++I) {
    uint64_t NumKeys = (1ULL << Bits[I]) - 1;
    const uint64_t *Cell = &Cycles[I * NumStructKinds];
    double Measured = double(Cell[Random64]) / double(Cell[CTree64]);

    model::CTreeModel Model(NumKeys, Params, NodesPerBlock);
    double Predicted = Model.predictedSpeedup(Timings);

    // The paper's SPARC-32 regime (k = 3 there; k = 4 with our 16-byte
    // compact nodes).
    double CMeasured =
        double(Cell[CompactRandom]) / double(Cell[CompactCTree]);
    model::CTreeModel CModel(
        NumKeys, Params,
        std::max<uint64_t>(1, Params.BlockBytes / sizeof(CompactBstNode)));
    double CPredicted = CModel.predictedSpeedup(Timings);

    Table.addRow({TablePrinter::fmtInt(NumKeys),
                  TablePrinter::fmt(Model.accessFunctionD(), 2),
                  TablePrinter::fmt(Model.reuseRs(), 2),
                  TablePrinter::fmt(Predicted, 2) + "x",
                  TablePrinter::fmt(Measured, 2) + "x",
                  TablePrinter::fmt(CPredicted, 2) + "x",
                  TablePrinter::fmt(CMeasured, 2) + "x"});

    Json.beginResult("ctree_speedup");
    Json.integer("tree_keys", NumKeys);
    Json.num("predicted_k2", Predicted);
    Json.num("measured_k2", Measured);
    Json.num("predicted_k4", CPredicted);
    Json.num("measured_k4", CMeasured);
    Json.integer("random_cycles", Cell[Random64]);
    Json.integer("ctree_cycles", Cell[CTree64]);
    Json.integer("compact_random_cycles", Cell[CompactRandom]);
    Json.integer("compact_ctree_cycles", Cell[CompactCTree]);
  }
  Table.print();
  std::printf("\nPaper shape to check: both curves decline as the tree "
              "outgrows the colored hot region.\nThe closed form assumes "
              "a worst-case naive layout (L2 miss rate 1); the simulated "
              "naive tree\nkeeps its frequently-touched top levels "
              "resident, so the prediction overshoots here where the\n"
              "paper's real-machine baseline (heavier TLB and memory "
              "system penalties) made it undershoot by ~15%%.\n");
  Json.beginResult("replay_sharding");
  Json.integer("replays", Sharding.Replays);
  Json.integer("parallel_replays", Sharding.ParallelReplays);
  Json.integer("records", Sharding.Records);
  Json.integer("shards", Sharding.Shards);
  Json.integer("workers", Sharding.Workers);
  Json.num("max_imbalance", Sharding.MaxImbalance);
  if (!Sharding.LastSerialReason.empty())
    Json.str("serial_reason", Sharding.LastSerialReason);
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
