//===- bench/fig10_model_validation.cpp - Paper Figure 10 --------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Figure 10: "Predicted and actual speedup for C-trees" — the Section 5
// analytic model's predicted cache-conscious speedup vs the measured
// speedup, across tree sizes 262,144 .. 4,194,304 keys (1M repeated
// searches in the paper; steady-state window here). The paper reports
// the model underestimating actual speedup by ~15% while matching the
// curve shape.
//
// "Actual" here is the simulated cycle ratio of a randomly-laid-out tree
// to a transparent C-tree on the E5000 memory model (the paper measured
// wall time on the real E5000).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/CTreeModel.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"
#include "trees/CompactTree.h"

#include <cinttypes>
#include <vector>

using namespace ccl;
using namespace ccl::trees;

namespace {

/// Warm the cache, then measure a steady-state search window.
template <typename SearchFn>
uint64_t steadyCycles(uint64_t NumKeys, unsigned Warmup, unsigned Window,
                      const sim::HierarchyConfig &Config, SearchFn &&Search) {
  sim::MemoryHierarchy M(Config);
  sim::SimAccess A(M);
  Xoshiro256 Rng(0xF1'0A11ULL);
  for (unsigned I = 0; I < Warmup; ++I)
    Search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  uint64_t Start = M.now();
  for (unsigned I = 0; I < Window; ++I)
    Search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Figure 10: predicted vs actual C-tree speedup",
                     "Chilimbi/Hill/Larus PLDI'99, Fig. 10 + Section 5.4",
                     Full);

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  // The model does not capture TLB effects (the paper names this as one
  // reason it underestimates actual speedup); keep the TLB on so the
  // measurement, like the paper's, includes them.
  CacheParams Params = CacheParams::fromHierarchy(Config);
  model::MemoryTimings Timings = model::MemoryTimings::ultraSparcE5000();

  std::vector<unsigned> Bits = {18, 19, 20};
  if (Full) {
    Bits.push_back(21);
    Bits.push_back(22); // Paper's 4,194,304-key point.
  }
  unsigned Warmup = 4000;
  unsigned Window = Full ? 40000 : 15000;

  uint64_t NodesPerBlock =
      std::max<uint64_t>(1, Params.BlockBytes / sizeof(BstNode));
  std::printf("subtree cluster size k = %" PRIu64
              " (paper used k=3 with 20-byte SPARC-32 nodes; 64-bit "
              "pointers make our node 24 bytes)\n\n",
              NodesPerBlock);

  TablePrinter Table({"tree keys", "D=log2(n+1)", "Rs(k=2)",
                      "predicted k=2", "measured k=2", "predicted k=4",
                      "measured k=4 (compact)"});
  for (unsigned B : Bits) {
    uint64_t NumKeys = (1ULL << B) - 1;
    auto Random = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
    CTree Ctree(Params);
    {
      auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
      Ctree.adopt(Source.root());
    }

    uint64_t RandomCycles = steadyCycles(
        NumKeys, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { Random.search(Key, A); });
    uint64_t CtreeCycles = steadyCycles(
        NumKeys, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { Ctree.search(Key, A); });
    double Measured = double(RandomCycles) / double(CtreeCycles);

    model::CTreeModel Model(NumKeys, Params, NodesPerBlock);
    double Predicted = Model.predictedSpeedup(Timings);

    // The paper's SPARC-32 regime (k = 3 there; k = 4 with our 16-byte
    // compact nodes).
    CompactTree CRandom = CompactTree::build(NumKeys, Params,
                                             LayoutScheme::Random, false);
    CompactTree CCtree = CompactTree::build(NumKeys, Params,
                                            LayoutScheme::Subtree, true);
    uint64_t CRandomCycles = steadyCycles(
        NumKeys, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { CRandom.contains(Key, A); });
    uint64_t CCtreeCycles = steadyCycles(
        NumKeys, Warmup, Window, Config,
        [&](uint32_t Key, auto &A) { CCtree.contains(Key, A); });
    double CMeasured = double(CRandomCycles) / double(CCtreeCycles);
    model::CTreeModel CModel(
        NumKeys, Params,
        std::max<uint64_t>(1, Params.BlockBytes / sizeof(CompactBstNode)));

    Table.addRow({TablePrinter::fmtInt(NumKeys),
                  TablePrinter::fmt(Model.accessFunctionD(), 2),
                  TablePrinter::fmt(Model.reuseRs(), 2),
                  TablePrinter::fmt(Predicted, 2) + "x",
                  TablePrinter::fmt(Measured, 2) + "x",
                  TablePrinter::fmt(CModel.predictedSpeedup(Timings), 2) +
                      "x",
                  TablePrinter::fmt(CMeasured, 2) + "x"});
  }
  Table.print();
  std::printf("\nPaper shape to check: both curves decline as the tree "
              "outgrows the colored hot region.\nThe closed form assumes "
              "a worst-case naive layout (L2 miss rate 1); the simulated "
              "naive tree\nkeeps its frequently-touched top levels "
              "resident, so the prediction overshoots here where the\n"
              "paper's real-machine baseline (heavier TLB and memory "
              "system penalties) made it undershoot by ~15%%.\n");
  return 0;
}
