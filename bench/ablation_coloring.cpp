//===- bench/ablation_coloring.cpp - §2.2 coloring ablation ------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the coloring fraction p/c: how much of the cache to
// reserve for the frequently-accessed top of the tree (§2.2 / Figure 2).
// The paper divides the cache in half (p = c/2) for its C-trees; this
// sweep shows the trade-off: too little hot space caches too few levels,
// too much starves the cold majority of the structure.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/CTreeModel.h"
#include "sim/AccessPolicy.h"
#include "support/Random.h"
#include "support/SweepRunner.h"
#include "trees/BinaryTree.h"
#include "trees/CTree.h"

#include <cinttypes>

using namespace ccl;
using namespace ccl::trees;

namespace {

uint64_t steadyCycles(const CTree &Tree, uint64_t NumKeys, unsigned Warmup,
                      unsigned Window, const sim::HierarchyConfig &Config) {
  sim::MemoryHierarchy M(Config);
  sim::SimAccess A(M);
  Xoshiro256 Rng(0xC0104ULL);
  for (unsigned I = 0; I < Warmup; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  uint64_t Start = M.now();
  for (unsigned I = 0; I < Window; ++I)
    Tree.search(BinarySearchTree::keyAt(Rng.nextBounded(NumKeys)), A);
  return M.now() - Start;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Ablation: coloring fraction p/c",
                     "Chilimbi/Hill/Larus PLDI'99, §2.2 / §5.3", Full);

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();
  const uint64_t NumKeys = Full ? (1ULL << 21) - 1 : (1ULL << 19) - 1;
  unsigned Warmup = 4000;
  unsigned Window = Full ? 30000 : 12000;

  auto Source = BinarySearchTree::build(NumKeys, LayoutScheme::Random);
  CacheParams Base = CacheParams::fromHierarchy(Config);

  std::printf("tree: %" PRIu64 " keys; cache has %" PRIu64 " sets\n\n",
              NumKeys, Base.CacheSets);

  TablePrinter Table({"hot sets (p)", "fraction", "hot levels cached",
                      "cycles/search", "model miss rate"});
  // One cell per coloring fraction. HotSets == CacheSets * 3 / 4 marks
  // the final three-quarters configuration (it always colors and has its
  // own label); every cell is independent, so the sweep runs in parallel
  // and rows are assembled in cell order afterwards.
  struct Fraction {
    unsigned Denominator; ///< 0 = no coloring; 3 = the 3/4 row.
  };
  const std::vector<Fraction> Fractions = {{0}, {8}, {4}, {2}, {3}};
  std::vector<std::vector<std::string>> Rows(Fractions.size());
  // Raw per-cell numbers for the machine-readable summary (--out).
  struct CellOut {
    uint64_t HotSets = 0;
    std::string Label;
    double HotLevels = 0, CyclesPerSearch = 0, MissRate = 0;
  };
  std::vector<CellOut> Out(Fractions.size());
  SweepRunner Runner;
  Runner.run(Fractions.size(), [&](size_t Cell) {
    unsigned Denominator = Fractions[Cell].Denominator;
    bool ThreeQuarters = Denominator == 3;
    CacheParams Params = Base;
    Params.HotSets = ThreeQuarters ? Base.CacheSets * 3 / 4
                     : Denominator == 0 ? 0
                                        : Base.CacheSets / Denominator;
    MorphOptions Options;
    Options.Color = Params.HotSets > 0;
    CTree Tree(Params);
    Tree.adopt(Source.root(), Options);
    uint64_t Cycles = steadyCycles(Tree, NumKeys, Warmup, Window, Config);

    uint64_t K = std::max<uint64_t>(1, Params.BlockBytes / sizeof(BstNode));
    model::CTreeModel Model(NumKeys, Params, K);
    double HotLevels = Params.HotSets == 0 ? 0.0 : Model.reuseRs();
    double MissRate =
        Params.HotSets == 0
            ? model::missRate({Model.accessFunctionD(), Model.spatialK(), 0})
            : Model.ccMissRate();
    Rows[Cell] = {TablePrinter::fmtInt(Params.HotSets),
                  ThreeQuarters      ? std::string("3/4")
                  : Denominator == 0 ? std::string("none")
                                     : "1/" + TablePrinter::fmtInt(Denominator),
                  TablePrinter::fmt(HotLevels, 1),
                  TablePrinter::fmt(double(Cycles) / Window, 1),
                  TablePrinter::fmt(MissRate, 3)};
    Out[Cell] = {Params.HotSets, Rows[Cell][1], HotLevels,
                 double(Cycles) / Window, MissRate};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  Table.print();
  std::printf("\nThe paper's choice (p = c/2) sits near the sweet spot: "
              "each doubling of p buys one more\nresident tree level "
              "(+1 to Rs) while halving the cold region.\n");

  bench::BenchJson Json("ablation_coloring", Full);
  for (const CellOut &C : Out) {
    Json.beginResult(C.Label);
    Json.integer("hot_sets", C.HotSets);
    Json.num("hot_levels_cached", C.HotLevels);
    Json.num("cycles_per_search", C.CyclesPerSearch);
    Json.num("model_miss_rate", C.MissRate);
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
