//===- bench/micro_morph_throughput.cpp - Reorganizer microbench -------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for ccmorph: wall-clock cost of one
// reorganization, reported per node. The paper positions ccmorph as
// "periodically invoked" (§3.1.1), so reorganization throughput bounds
// how often a program can afford to re-layout — and the morph pass also
// dominates fig5/fig7 table construction in this repo. Covers the four
// layout schemes, forest (chained hash table) reorganization,
// profile-guided coloring, and reuse of one CcMorph object (the
// persistent-scratch fast path). `--out <path>` emits google-benchmark
// JSON alongside BENCH_allocator_throughput.json.
//
//===----------------------------------------------------------------------===//

#include "bench/MicroBenchMain.h"
#include "core/CcMorph.h"
#include "sim/AccessPolicy.h"
#include "trees/BinaryTree.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

using namespace ccl;

namespace {

/// Cost of one full ccmorph reorganization, reported per node. Fresh
/// CcMorph each iteration (cold scratch buffers) — the name and args
/// match the bench that used to live in micro_allocator_throughput, so
/// perf trajectories stay comparable across that move.
void BM_CcMorphPerNode(benchmark::State &State) {
  const uint64_t N = uint64_t(State.range(0));
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CacheParams Params;
  for (auto _ : State) {
    CcMorph<trees::BstNode, trees::BstAdapter> Morph(Params);
    benchmark::DoNotOptimize(Morph.reorganize(Tree.root()));
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_CcMorphPerNode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

/// Same reorganization through one persistent CcMorph: the remap table
/// and traversal scratch keep their capacity across calls, which is the
/// intended "periodically invoked" usage.
void BM_CcMorphPerNodeReused(benchmark::State &State) {
  const uint64_t N = uint64_t(State.range(0));
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganize(Tree.root()));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_CcMorphPerNodeReused)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

/// One scheme per run: subtree clustering (the paper's technique) vs the
/// comparison layouts. Clustering cost, not search benefit.
void runScheme(benchmark::State &State, LayoutScheme Scheme) {
  const uint64_t N = 1 << 14;
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  MorphOptions Options;
  Options.Scheme = Scheme;
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganize(Tree.root(), Options));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
  State.SetLabel(layoutSchemeName(Scheme));
}
void BM_CcMorphScheme_Subtree(benchmark::State &State) {
  runScheme(State, LayoutScheme::Subtree);
}
void BM_CcMorphScheme_DepthFirst(benchmark::State &State) {
  runScheme(State, LayoutScheme::DepthFirst);
}
void BM_CcMorphScheme_Bfs(benchmark::State &State) {
  runScheme(State, LayoutScheme::Bfs);
}
void BM_CcMorphScheme_Random(benchmark::State &State) {
  runScheme(State, LayoutScheme::Random);
}
BENCHMARK(BM_CcMorphScheme_Subtree)->Name("BM_CcMorphScheme/subtree");
BENCHMARK(BM_CcMorphScheme_DepthFirst)->Name("BM_CcMorphScheme/depth-first");
BENCHMARK(BM_CcMorphScheme_Bfs)->Name("BM_CcMorphScheme/bfs");
BENCHMARK(BM_CcMorphScheme_Random)->Name("BM_CcMorphScheme/random");

/// Forest reorganization: many small chains into one shared arena, the
/// chained-hash-table shape (§3.1.1's "lists are unary trees").
void BM_CcMorphForest(benchmark::State &State) {
  const uint64_t Chains = uint64_t(State.range(0));
  const uint64_t NodesPerChain = 12;
  std::vector<trees::BinarySearchTree> Trees;
  std::vector<trees::BstNode *> Roots;
  Trees.reserve(Chains);
  Roots.reserve(Chains);
  for (uint64_t C = 0; C < Chains; ++C) {
    Trees.push_back(trees::BinarySearchTree::build(
        NodesPerChain, LayoutScheme::Random, 0x5eedULL + C));
    Roots.push_back(const_cast<trees::BstNode *>(Trees.back().root()));
  }
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganizeForest(Roots));
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Chains * NodesPerChain));
}
BENCHMARK(BM_CcMorphForest)->Arg(1 << 8)->Arg(1 << 11);

/// Profile-guided reorganization: the per-cluster heat ranking plus the
/// per-node profile probes on top of the plain morph pass.
void BM_CcMorphProfiled(benchmark::State &State) {
  const uint64_t N = 1 << 14;
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  CcMorph<trees::BstNode, trees::BstAdapter>::Profile Counts;
  // Skewed synthetic profile: nodes near the root are hottest.
  sim::NativeAccess A;
  for (uint64_t I = 1; I <= N; I += 7)
    trees::bstSearchProfiled(Tree.root(),
                             trees::BinarySearchTree::keyAt(I % N), A,
                             Counts);
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganizeProfiled(
        const_cast<trees::BstNode *>(Tree.root()), Counts));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_CcMorphProfiled);

} // namespace

int main(int Argc, char **Argv) {
  return ccl::bench::runMicroBenchmark(Argc, Argv);
}
