//===- bench/fig6_macrobenchmarks.cpp - Paper Figure 6 -----------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Figure 6: "RADIANCE and VIS applications" — normalized execution time
// of two real-world workloads. Substitutions (see DESIGN.md):
//
//  * RADIANCE (octree-based ray tracer) -> src/raytrace: octree ray
//    caster; layouts: base, ccmorph clustering, clustering + coloring.
//    The measurement includes the reorganization overhead, as in the
//    paper. Paper result: 42% speedup from clustering + coloring.
//
//  * VIS (BDD-based formal verification) -> src/bdd: N-queens + adder
//    equivalence + random evaluations; allocation via plain malloc vs
//    ccmalloc-new-block (BDDs are DAGs, so ccmorph does not apply).
//    Paper result: 27% speedup.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "bdd/BddWorkloads.h"
#include "bench/BenchCommon.h"
#include "obs/MetricsExport.h"
#include "obs/PerfCounters.h"
#include "raytrace/Raytrace.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/SweepRunner.h"

#include <cinttypes>
#include <memory>
#include <vector>

using namespace ccl;

namespace {

/// Ages the heap the way hours of prior work age a long-running process
/// like VIS: a large churn of allocations and interleaved frees leaves
/// the free lists full of scattered chunks. Subsequent plain mallocs
/// recycle those scattered holes (destroying allocation-order locality),
/// while ccmalloc's hints keep placing related nodes together — exactly
/// the situation the paper's VIS experiment started from.
void ageHeap(CcAllocator &Alloc, size_t ChunkBytes, unsigned Count,
             uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  std::vector<void *> Live;
  Live.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Live.push_back(Alloc.ccmalloc(ChunkBytes));
  Rng.shuffle(Live);
  // Free a scattered 60%, leaving fragmented pages behind.
  size_t Keep = Live.size() * 2 / 5;
  for (size_t I = Keep; I < Live.size(); ++I)
    Alloc.ccfree(Live[I]);
}

/// VIS-substitute workload: symbolic construction + counting + a heavy
/// random-evaluation phase. Returns total simulated cycles.
uint64_t runVisWorkload(bool UseCcMalloc, heap::CcStrategy Strategy,
                        unsigned QueensN, uint64_t Evals,
                        const sim::HierarchyConfig &Config,
                        uint64_t &Checksum, uint64_t &NodesOut,
                        uint64_t &FootprintOut) {
  sim::MemoryHierarchy Hierarchy(Config);
  CcAllocator Alloc(CacheParams::fromHierarchy(Config), Strategy);
  // VIS is a long-running system: its heap is aged before the measured
  // BDD phase begins (not simulated; setup only).
  ageHeap(Alloc, sizeof(bdd::BddNode), 300000, 0xA6EDULL);
  bdd::BddManager Mgr(QueensN * QueensN, Alloc, &Hierarchy, UseCcMalloc);

  bdd::BddNode *Queens = bdd::buildNQueens(Mgr, QueensN);
  double Solutions = Mgr.satCount(Queens);
  uint64_t Hits = bdd::evalRandom(Mgr, Queens, Evals, 0x715ULL);

  // Adder equivalence check on the same manager (shares the node pool).
  unsigned Bits = QueensN * QueensN / 2;
  bdd::BddNode *Miter = bdd::buildAdderEquivalence(Mgr, Bits);

  Checksum = uint64_t(Solutions) * 1000 + Hits +
             (Miter == Mgr.zero() ? 7 : 0);
  NodesOut = Mgr.uniqueNodes();
  FootprintOut = Alloc.footprintBytes();
  return Hierarchy.stats().totalCycles();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader(
      "Figure 6: RADIANCE and VIS applications (substitutes)",
      "Chilimbi/Hill/Larus PLDI'99, Fig. 6 (E5000 memory system)", Full);

  sim::HierarchyConfig Config = sim::HierarchyConfig::ultraSparcE5000();

  //===------------------------------------------------------------------===//
  // RADIANCE substitute: octree ray casting.
  //===------------------------------------------------------------------===//
  raytrace::RaytraceConfig RC;
  RC.NumSpheres = Full ? 150000 : 50000;
  RC.NumRays = Full ? 250000 : 150000;
  RC.MaxDepth = 9;
  RC.LeafCapacity = 4;

  unsigned QueensN = Full ? 8 : 7;
  uint64_t Evals = Full ? 400000 : 200000;

  // Simulated cells — three raytrace layouts and four VIS allocator
  // configurations — are independent (each builds its own scene/heap and
  // drives its own hierarchy), so they fan out across SweepRunner
  // workers into preallocated slots. The native raytrace runs are real
  // wall-clock measurements and stay serial, after the parallel phase,
  // so they never time under load. Presentation below reads the slots in
  // the original serial order.
  constexpr raytrace::RtLayout RtLayouts[] = {
      raytrace::RtLayout::Base, raytrace::RtLayout::Cluster,
      raytrace::RtLayout::ClusterColor};
  constexpr size_t NumRt = std::size(RtLayouts);
  struct VisCell {
    bool UseCcMalloc;
    heap::CcStrategy Strategy;
    uint64_t Cycles = 0;
    uint64_t Checksum = 0, Nodes = 0, Footprint = 0;
  };
  VisCell VisCells[] = {{false, heap::CcStrategy::NewBlock},
                        {true, heap::CcStrategy::NewBlock},
                        {true, heap::CcStrategy::Closest},
                        {true, heap::CcStrategy::FirstFit}};
  constexpr size_t NumVis = std::size(VisCells);

  // --hw: bracket each serial native raytrace run with a perf_event
  // group, pairing hardware counts with the simulated miss totals.
  // Everything it prints is gated on the flag, so default stdout stays
  // byte-identical.
  const bool HwFlag = bench::hasFlag(Argc, Argv, "--hw");
  std::unique_ptr<obs::PerfCounters> Hw;
  if (HwFlag)
    Hw = std::make_unique<obs::PerfCounters>();

  std::vector<raytrace::RtResult> RtSim(NumRt);
  SweepRunner Runner;
  {
    metrics::ScopedSpan SimSpan("fig6.sim");
    Runner.run(NumRt + NumVis, [&](size_t Cell) {
      if (Cell < NumRt) {
        RtSim[Cell] = raytrace::runRaytrace(RC, RtLayouts[Cell], &Config);
        return;
      }
      VisCell &V = VisCells[Cell - NumRt];
      V.Cycles = runVisWorkload(V.UseCcMalloc, V.Strategy, QueensN, Evals,
                                Config, V.Checksum, V.Nodes, V.Footprint);
    });
  }

  std::printf("RADIANCE substitute: octree over %u spheres, %u rays\n",
              RC.NumSpheres, RC.NumRays);
  TablePrinter Rad({"layout", "norm time", "cycles", "L2 misses",
                    "native ms", "checksum ok"});
  double RadBase = 0;
  uint64_t RadChecksum = 0;
  bench::BenchJson Json("fig6", Full);
  if (HwFlag) {
    Json.beginResult("(hw)");
    Json.str("section", "meta");
    Json.str("metric", "hw");
    Json.str("hw_available", Hw->available() ? "yes" : "no");
    if (!Hw->available())
      Json.str("hw_reason", Hw->reason());
  }
  std::vector<obs::PerfReading> RtHw(NumRt);
  for (size_t I = 0; I < NumRt; ++I) {
    raytrace::RtLayout L = RtLayouts[I];
    const raytrace::RtResult &Sim = RtSim[I];
    raytrace::RtResult Native;
    {
      metrics::ScopedSpan NativeSpan("fig6.native_raytrace");
      std::unique_ptr<obs::PerfScope> Scope;
      if (HwFlag)
        Scope = std::make_unique<obs::PerfScope>(*Hw, RtHw[I]);
      Native = raytrace::runRaytrace(RC, L, nullptr);
    }
    double Total = double(Sim.Stats.totalCycles());
    if (L == raytrace::RtLayout::Base) {
      RadBase = Total;
      RadChecksum = Sim.Checksum;
    }
    Rad.addRow({raytrace::rtLayoutName(L), bench::pct(Total, RadBase),
                TablePrinter::fmtInt(Sim.Stats.totalCycles()),
                TablePrinter::fmtInt(Sim.Stats.L2Misses),
                TablePrinter::fmt(Native.NativeSeconds * 1000, 1),
                Sim.Checksum == RadChecksum ? "yes" : "NO!"});
    if (L != raytrace::RtLayout::Base)
      std::printf("%s speedup: %s (paper: 1.42x / 42%% for "
                  "clustering+coloring)\n",
                  raytrace::rtLayoutName(L),
                  bench::speedupStr(RadBase, Total).c_str());
    Json.beginResult("radiance");
    Json.str("layout", raytrace::rtLayoutName(L));
    Json.num("norm_time", 100.0 * Total / RadBase);
    Json.integer("total_cycles", Sim.Stats.totalCycles());
    Json.integer("l2_misses", Sim.Stats.L2Misses);
    Json.integer("sim_l1_misses", Sim.Stats.L1Misses);
    Json.integer("sim_l2_misses", Sim.Stats.L2Misses);
    Json.integer("sim_tlb_misses", Sim.Stats.TlbMisses);
    Json.num("native_ms", Native.NativeSeconds * 1000);
    Json.integer("checksum_ok", Sim.Checksum == RadChecksum ? 1 : 0);
    if (HwFlag && RtHw[I].Available) {
      const obs::PerfReading &R = RtHw[I];
      auto HwField = [&](const char *Key, unsigned E) {
        if (R.has(E))
          Json.integer(Key, uint64_t(R.Scaled[E]));
      };
      HwField("hw_cycles", obs::PerfCycles);
      HwField("hw_instructions", obs::PerfInstructions);
      HwField("hw_l1d_misses", obs::PerfL1dMisses);
      HwField("hw_llc_misses", obs::PerfLlcMisses);
      HwField("hw_dtlb_misses", obs::PerfDtlbMisses);
      Json.integer("hw_time_enabled_ns", R.TimeEnabledNs);
      Json.integer("hw_time_running_ns", R.TimeRunningNs);
    }
  }
  Rad.print();
  if (HwFlag) {
    if (!Hw->available()) {
      std::printf("\nhw: unavailable (%s)\n", Hw->reason().c_str());
    } else {
      std::printf("\nHardware counters for the native raytrace runs "
                  "(--hw; multiplexing-corrected):\n");
      TablePrinter HwTable({"layout", "cycles", "instr", "l1d miss",
                            "llc miss", "dtlb miss", "run%"});
      for (size_t I = 0; I < NumRt; ++I) {
        const obs::PerfReading &R = RtHw[I];
        if (!R.Available)
          continue;
        auto Val = [&](unsigned E) {
          return R.has(E) ? TablePrinter::fmtInt(uint64_t(R.Scaled[E]))
                          : std::string("-");
        };
        HwTable.addRow({raytrace::rtLayoutName(RtLayouts[I]),
                        Val(obs::PerfCycles), Val(obs::PerfInstructions),
                        Val(obs::PerfL1dMisses), Val(obs::PerfLlcMisses),
                        Val(obs::PerfDtlbMisses),
                        TablePrinter::fmt(100.0 * R.runningShare(), 0) +
                            "%"});
      }
      HwTable.print();
    }
  }

  //===------------------------------------------------------------------===//
  // VIS substitute: BDD package.
  //===------------------------------------------------------------------===//
  std::printf("\nVIS substitute: BDD %u-queens + %u-bit adder equivalence "
              "+ %" PRIu64 " evaluations\n",
              QueensN, QueensN * QueensN / 2, Evals);

  TablePrinter Vis({"allocator", "norm time", "cycles", "BDD nodes",
                    "heap KB", "checksum ok"});
  const VisCell &Base = VisCells[0];
  Vis.addRow({"malloc (base)", "100.0%", TablePrinter::fmtInt(Base.Cycles),
              TablePrinter::fmtInt(Base.Nodes),
              TablePrinter::fmtInt(Base.Footprint / 1024), "yes"});
  Json.beginResult("vis");
  Json.str("allocator", "malloc");
  Json.num("norm_time", 100.0);
  Json.integer("total_cycles", Base.Cycles);
  Json.integer("bdd_nodes", Base.Nodes);
  Json.integer("heap_bytes", Base.Footprint);
  Json.integer("checksum_ok", 1);
  for (size_t I = 1; I < NumVis; ++I) {
    const VisCell &V = VisCells[I];
    Vis.addRow({std::string("ccmalloc ") + heap::strategyName(V.Strategy),
                bench::pct(double(V.Cycles), double(Base.Cycles)),
                TablePrinter::fmtInt(V.Cycles),
                TablePrinter::fmtInt(V.Nodes),
                TablePrinter::fmtInt(V.Footprint / 1024),
                V.Checksum == Base.Checksum ? "yes" : "NO!"});
    if (V.Strategy == heap::CcStrategy::NewBlock)
      std::printf("ccmalloc-new-block speedup: %s (paper: 1.27x / 27%%)\n",
                  bench::speedupStr(double(Base.Cycles), double(V.Cycles))
                      .c_str());
    Json.beginResult("vis");
    Json.str("allocator", heap::strategyName(V.Strategy));
    Json.num("norm_time", 100.0 * double(V.Cycles) / double(Base.Cycles));
    Json.integer("total_cycles", V.Cycles);
    Json.integer("bdd_nodes", V.Nodes);
    Json.integer("heap_bytes", V.Footprint);
    Json.integer("checksum_ok", V.Checksum == Base.Checksum ? 1 : 0);
  }
  Vis.print();
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  obs::dumpProcessMetrics(bench::metricsOutPath(Argc, Argv));
  return 0;
}
