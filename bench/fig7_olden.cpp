//===- bench/fig7_olden.cpp - Paper Figure 7 ---------------------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Figure 7: "Performance of cache-conscious data placement" — normalized
// execution time of the four Olden benchmarks (treeadd, health, mst,
// perimeter) under: Base, hardware prefetch (HP), software prefetch
// (SP), ccmalloc first-fit (FA) / closest (CA) / new-block (NA), and
// ccmorph clustering (Cl) / clustering+coloring (Cl+Col), using the RSIM
// Table 1 memory system. Each bar is broken into busy and memory-stall
// components.
//
// Paper shape: ccmorph beats HW and SW prefetching everywhere (28-138%
// over base); ccmalloc-new-block beats prefetching on everything except
// treeadd; treeadd/perimeter see only modest gains because creation
// order already matches traversal order.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "obs/MetricsExport.h"
#include "obs/PerfCounters.h"
#include "olden/Health.h"
#include "olden/Mst.h"
#include "olden/Perimeter.h"
#include "olden/TreeAdd.h"
#include "support/Metrics.h"
#include "support/SweepRunner.h"

#include <functional>
#include <memory>
#include <vector>

using namespace ccl;
using namespace ccl::olden;

namespace {

struct BenchDef {
  std::string Name;
  std::function<BenchResult(Variant, const sim::HierarchyConfig *)> Run;
};

const char *shortName(Variant V) {
  switch (V) {
  case Variant::Base:
    return "B";
  case Variant::HwPrefetch:
    return "HP";
  case Variant::SwPrefetch:
    return "SP";
  case Variant::CcMallocFirstFit:
    return "FA";
  case Variant::CcMallocClosest:
    return "CA";
  case Variant::CcMallocNewBlock:
    return "NA";
  case Variant::CcMallocNull:
    return "Null";
  case Variant::CcMorphCluster:
    return "Cl";
  case Variant::CcMorphColor:
    return "Cl+Col";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Figure 7: Olden benchmarks under cache-conscious "
                     "placement",
                     "Chilimbi/Hill/Larus PLDI'99, Fig. 7 + Table 1 "
                     "(RSIM memory system)",
                     Full);

  TreeAddConfig TreeAdd;
  TreeAdd.Levels = Full ? 18 : 16; // Table 2: 256K nodes.
  TreeAdd.Iterations = 8;

  HealthConfig Health;
  Health.MaxLevel = 3; // Table 2: max level 3.
  Health.Steps = Full ? 1500 : 500;
  Health.MorphInterval = Full ? 300 : 100;

  MstConfig Mst;
  Mst.NumVertices = 512; // Table 2: 512 nodes.
  Mst.Degree = 32;       // Adjacency structure exceeds the 256KB L2.

  PerimeterConfig Perimeter;
  Perimeter.Levels = Full ? 12 : 10; // Table 2: 4K x 4K image.
  Perimeter.Iterations = 3;

  std::vector<BenchDef> Benchmarks = {
      {"treeadd", [&](Variant V, const sim::HierarchyConfig *S) {
         return runTreeAdd(TreeAdd, V, S);
       }},
      {"health", [&](Variant V, const sim::HierarchyConfig *S) {
         return runHealth(Health, V, S);
       }},
      {"mst", [&](Variant V, const sim::HierarchyConfig *S) {
         return runMst(Mst, V, S);
       }},
      {"perimeter", [&](Variant V, const sim::HierarchyConfig *S) {
         return runPerimeter(Perimeter, V, S);
       }},
  };

  sim::HierarchyConfig Config = sim::HierarchyConfig::rsimTable1();
  bench::BenchJson Json("fig7", Full);

  // Every (benchmark, variant) cell is an independent simulation: run the
  // whole grid on SweepRunner workers, then present serially from the
  // preallocated slots so the tables come out byte-identical to a serial
  // sweep regardless of thread count.
  const size_t NumVariants = std::size(AllVariants);
  std::vector<BenchResult> Grid(Benchmarks.size() * NumVariants);
  SweepRunner Runner;
  {
    metrics::ScopedSpan SimSpan("fig7.sim");
    Runner.run(Grid.size(), [&](size_t Cell) {
      const BenchDef &Bench = Benchmarks[Cell / NumVariants];
      Grid[Cell] = Bench.Run(AllVariants[Cell % NumVariants], &Config);
    });
  }

  // --hw: re-run the whole grid natively (no simulator), serially so no
  // cell times under parallel load, with a perf_event group around each
  // run. Hardware counts land in the same JSON result objects as the
  // simulated misses so readers can pair them row by row. All stdout it
  // produces is gated on the flag — golden tables stay byte-identical.
  const bool HwFlag = bench::hasFlag(Argc, Argv, "--hw");
  std::unique_ptr<obs::PerfCounters> Hw;
  std::vector<obs::PerfReading> HwGrid(Grid.size());
  std::vector<double> NativeMs(Grid.size(), 0.0);
  if (HwFlag) {
    Hw = std::make_unique<obs::PerfCounters>();
    Json.beginResult("(hw)");
    Json.str("section", "meta");
    Json.str("metric", "hw");
    Json.str("hw_available", Hw->available() ? "yes" : "no");
    if (!Hw->available())
      Json.str("hw_reason", Hw->reason());
    metrics::ScopedSpan NativeSpan("fig7.native");
    for (size_t Cell = 0; Cell < Grid.size(); ++Cell) {
      const BenchDef &Bench = Benchmarks[Cell / NumVariants];
      obs::PerfScope Scope(*Hw, HwGrid[Cell]);
      BenchResult Native = Bench.Run(AllVariants[Cell % NumVariants],
                                     nullptr);
      NativeMs[Cell] = Native.NativeSeconds * 1000;
    }
  }

  for (size_t B = 0; B < Benchmarks.size(); ++B) {
    const BenchDef &Bench = Benchmarks[B];
    std::printf("--- %s ---\n", Bench.Name.c_str());
    TablePrinter Table({"config", "norm time", "busy%", "L1 stall%",
                        "L2 stall%", "TLB%", "other%", "L2 misses",
                        "checksum ok"});
    BenchResult Base;
    double BestPrefetch = 0;
    double MorphBest = 0;
    double NewBlock = 0;
    for (size_t I = 0; I < NumVariants; ++I) {
      Variant V = AllVariants[I];
      const BenchResult &R = Grid[B * NumVariants + I];
      if (V == Variant::Base)
        Base = R;
      double Total = double(R.Stats.totalCycles());
      double BaseTotal = double(Base.Stats.totalCycles());
      if (V == Variant::HwPrefetch || V == Variant::SwPrefetch)
        BestPrefetch = BestPrefetch == 0 ? Total : std::min(BestPrefetch, Total);
      if (usesCcMorph(V))
        MorphBest = MorphBest == 0 ? Total : std::min(MorphBest, Total);
      if (V == Variant::CcMallocNewBlock)
        NewBlock = Total;
      Table.addRow(
          {shortName(V), bench::pct(Total, BaseTotal),
           TablePrinter::fmt(100.0 * R.Stats.BusyCycles / Total, 1),
           TablePrinter::fmt(100.0 * R.Stats.L1StallCycles / Total, 1),
           TablePrinter::fmt(100.0 * R.Stats.L2StallCycles / Total, 1),
           TablePrinter::fmt(100.0 * R.Stats.TlbStallCycles / Total, 1),
           TablePrinter::fmt(100.0 * R.Stats.PrefetchIssueCycles / Total, 1),
           TablePrinter::fmtInt(R.Stats.L2Misses),
           R.Checksum == Base.Checksum ? "yes" : "NO!"});
      Json.beginResult(Bench.Name);
      Json.str("variant", shortName(V));
      Json.num("norm_time", 100.0 * Total / BaseTotal);
      Json.integer("total_cycles", R.Stats.totalCycles());
      Json.integer("busy_cycles", R.Stats.BusyCycles);
      Json.integer("l1_stall_cycles", R.Stats.L1StallCycles);
      Json.integer("l2_stall_cycles", R.Stats.L2StallCycles);
      Json.integer("tlb_stall_cycles", R.Stats.TlbStallCycles);
      Json.integer("l2_misses", R.Stats.L2Misses);
      Json.integer("sim_l1_misses", R.Stats.L1Misses);
      Json.integer("sim_l2_misses", R.Stats.L2Misses);
      Json.integer("sim_tlb_misses", R.Stats.TlbMisses);
      Json.integer("checksum_ok", R.Checksum == Base.Checksum ? 1 : 0);
      size_t Cell = B * NumVariants + I;
      if (HwFlag && HwGrid[Cell].Available) {
        const obs::PerfReading &HwR = HwGrid[Cell];
        auto HwField = [&](const char *Key, unsigned E) {
          if (HwR.has(E))
            Json.integer(Key, uint64_t(HwR.Scaled[E]));
        };
        HwField("hw_cycles", obs::PerfCycles);
        HwField("hw_instructions", obs::PerfInstructions);
        HwField("hw_l1d_misses", obs::PerfL1dMisses);
        HwField("hw_llc_misses", obs::PerfLlcMisses);
        HwField("hw_dtlb_misses", obs::PerfDtlbMisses);
        Json.integer("hw_time_enabled_ns", HwR.TimeEnabledNs);
        Json.integer("hw_time_running_ns", HwR.TimeRunningNs);
        Json.num("native_ms", NativeMs[Cell]);
      }
    }
    Table.print();
    double BaseTotal = double(Base.Stats.totalCycles());
    std::printf("speedups: ccmorph(best) %s over base, %s over best "
                "prefetch; ccmalloc-NA %s over best prefetch\n\n",
                bench::speedupStr(BaseTotal, MorphBest).c_str(),
                bench::speedupStr(BestPrefetch, MorphBest).c_str(),
                bench::speedupStr(BestPrefetch, NewBlock).c_str());
  }

  std::printf("Paper shape to check: ccmorph > prefetching on all four; "
              "ccmalloc-NA > prefetching except treeadd;\n"
              "treeadd/perimeter gains modest (creation order == dominant "
              "traversal order).\n");
  if (HwFlag) {
    if (!Hw->available()) {
      std::printf("\nhw: unavailable (%s)\n", Hw->reason().c_str());
    } else {
      std::printf("\nHardware counters for the native runs (--hw; "
                  "multiplexing-corrected):\n");
      TablePrinter HwTable({"bench", "config", "cycles", "instr",
                            "l1d miss", "llc miss", "dtlb miss",
                            "native ms", "run%"});
      for (size_t Cell = 0; Cell < Grid.size(); ++Cell) {
        const obs::PerfReading &R = HwGrid[Cell];
        if (!R.Available)
          continue;
        auto Val = [&](unsigned E) {
          return R.has(E) ? TablePrinter::fmtInt(uint64_t(R.Scaled[E]))
                          : std::string("-");
        };
        HwTable.addRow({Benchmarks[Cell / NumVariants].Name,
                        shortName(AllVariants[Cell % NumVariants]),
                        Val(obs::PerfCycles), Val(obs::PerfInstructions),
                        Val(obs::PerfL1dMisses), Val(obs::PerfLlcMisses),
                        Val(obs::PerfDtlbMisses),
                        TablePrinter::fmt(NativeMs[Cell], 1),
                        TablePrinter::fmt(100.0 * R.runningShare(), 0) +
                            "%"});
      }
      HwTable.print();
    }
  }
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  obs::dumpProcessMetrics(bench::metricsOutPath(Argc, Argv));
  return 0;
}
