//===- bench/micro_morph_parallel.cpp - Parallel reorganizer bench -----------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for CcMorph::reorganizeParallel: the
// serial address plan plus the copy/fixup fanned out over a SweepRunner
// pool. The interesting quantity is scaling — the parallel pass is
// byte-identical to the serial one at any worker count (ccmorph_test's
// CcMorphParallel suite), so the only question left is how much
// wall-clock the fan-out buys. Worker counts 1/2/4/8 cover the serial
// fallback, the container's typical core counts, and oversubscription.
// All cases use real time: the pool threads do the work while the
// calling thread blocks. `--out <path>` emits google-benchmark JSON
// (the committed reference is BENCH_morph_parallel.json).
//
//===----------------------------------------------------------------------===//

#include "bench/MicroBenchMain.h"
#include "core/CcMorph.h"
#include "trees/BinaryTree.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

using namespace ccl;

namespace {

/// Full parallel reorganization (plan + fanned copy/fixup) of a large
/// tree, reported per node. Workers == 1 exercises the graceful serial
/// fallback, so the 1-worker row doubles as the baseline the speedup is
/// measured against.
void BM_CcMorphParallel(benchmark::State &State) {
  const uint64_t N = 1 << 17;
  const unsigned Workers = unsigned(State.range(0));
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  SweepRunner Pool(Workers);
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganizeParallel(
        const_cast<trees::BstNode *>(Tree.root()), Pool));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
  const MorphParallelEvent &Event = Morph.lastParallelEvent();
  State.SetLabel(Event.Parallel ? "parallel" : Event.Reason);
}
BENCHMARK(BM_CcMorphParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// The serial entry point on the identical tree: what reorganize() costs
/// without any pool in the picture (no fallback bookkeeping either), so
/// regressions in the shared plan phase show up even when the parallel
/// rows shift with machine load.
void BM_CcMorphSerialReference(benchmark::State &State) {
  const uint64_t N = 1 << 17;
  auto Tree = trees::BinarySearchTree::build(N, LayoutScheme::Random);
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Morph.reorganize(const_cast<trees::BstNode *>(Tree.root())));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_CcMorphSerialReference)->UseRealTime();

/// Parallel forest reorganization: many short chains (the chained-hash
/// shape) make many small clusters, the worst case for cluster-aligned
/// segmentation — segments stay balanced because every cluster is tiny.
void BM_CcMorphParallelForest(benchmark::State &State) {
  const uint64_t Chains = 1 << 12;
  const uint64_t NodesPerChain = 12;
  const unsigned Workers = unsigned(State.range(0));
  std::vector<trees::BinarySearchTree> Trees;
  std::vector<trees::BstNode *> Roots;
  Trees.reserve(Chains);
  Roots.reserve(Chains);
  for (uint64_t C = 0; C < Chains; ++C) {
    Trees.push_back(trees::BinarySearchTree::build(
        NodesPerChain, LayoutScheme::Random, 0x5eedULL + C));
    Roots.push_back(const_cast<trees::BstNode *>(Trees.back().root()));
  }
  CcMorph<trees::BstNode, trees::BstAdapter> Morph{CacheParams()};
  SweepRunner Pool(Workers);
  for (auto _ : State)
    benchmark::DoNotOptimize(Morph.reorganizeForestParallel(Roots, Pool));
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Chains * NodesPerChain));
}
BENCHMARK(BM_CcMorphParallelForest)->Arg(1)->Arg(4)->UseRealTime();

} // namespace

int main(int Argc, char **Argv) {
  return ccl::bench::runMicroBenchmark(Argc, Argv);
}
