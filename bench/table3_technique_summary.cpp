//===- bench/table3_technique_summary.cpp - Paper Table 3 --------------------===//
//
// Part of the cache-conscious structure layout library (PLDI'99 repro).
//
//===----------------------------------------------------------------------===//
//
// Table 3: "Summary of cache-conscious data placement techniques" — the
// qualitative trade-off table, with the "Performance" column backed by
// quick live measurements from this repository's own benchmarks.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "olden/Health.h"
#include "olden/Mst.h"

using namespace ccl;
using namespace ccl::olden;

int main(int Argc, char **Argv) {
  bool Full = bench::fullScale(Argc, Argv);
  bench::printHeader("Table 3: summary of cache-conscious placement "
                     "techniques",
                     "Chilimbi/Hill/Larus PLDI'99, Table 3", Full);

  // Quick live measurements backing the Performance column.
  sim::HierarchyConfig Config = sim::HierarchyConfig::rsimTable1();
  MstConfig Mst;
  Mst.NumVertices = Full ? 512 : 256;
  Mst.Degree = 16;
  double MstBase =
      double(runMst(Mst, Variant::Base, &Config).Stats.totalCycles());
  double MstMorph = double(
      runMst(Mst, Variant::CcMorphColor, &Config).Stats.totalCycles());

  HealthConfig Health;
  Health.MaxLevel = Full ? 3 : 2;
  Health.Steps = Full ? 800 : 400;
  double HealthBase =
      double(runHealth(Health, Variant::Base, &Config).Stats.totalCycles());
  double HealthNa = double(
      runHealth(Health, Variant::CcMallocNewBlock, &Config)
          .Stats.totalCycles());

  TablePrinter Table({"technique", "data structures", "program knowledge",
                      "architectural knowledge", "source modification",
                      "performance (paper)", "measured here"});
  Table.addRow({"CC design (by hand)", "universal", "high", "high",
                "large", "high", "-"});
  Table.addRow({"ccmorph", "tree-like", "moderate", "low", "small",
                "moderate-high",
                bench::speedupStr(MstBase, MstMorph) + " (mst)"});
  Table.addRow({"ccmalloc", "universal", "low", "none", "small",
                "moderate-high",
                bench::speedupStr(HealthBase, HealthNa) + " (health)"});
  Table.print();

  std::printf("\nSafety (paper §3.2): misusing ccmorph can break "
              "correctness (it moves objects); misusing ccmalloc\nonly "
              "costs performance — every benchmark in this repository "
              "asserts checksum equality across variants.\n");

  // Machine-readable summary (--out <path> / CCL_BENCH_OUT).
  bench::BenchJson Json("table3", Full);
  Json.beginResult("ccmorph");
  Json.str("workload", "mst");
  Json.num("base_cycles", MstBase);
  Json.num("optimized_cycles", MstMorph);
  Json.num("speedup", MstMorph > 0.0 ? MstBase / MstMorph : 0.0);
  Json.beginResult("ccmalloc");
  Json.str("workload", "health");
  Json.num("base_cycles", HealthBase);
  Json.num("optimized_cycles", HealthNa);
  Json.num("speedup", HealthNa > 0.0 ? HealthBase / HealthNa : 0.0);
  Json.writeIfRequested(bench::benchOutPath(Argc, Argv));
  return 0;
}
